"""Orchestration chaos: seeded sabotage for the supervised sweep executor.

PR 1's :class:`~repro.faults.injector.FaultInjector` attacks the *simulated*
machine; this module attacks the *machinery that runs the experiments* —
worker processes and the on-disk result cache — and proves the supervisor
(:mod:`repro.experiments.supervisor`) absorbs it.  Four injectors, all
derived deterministically from one seed:

* **kill-worker** — the worker calls ``os._exit`` before computing, the
  parent sees a death with no result;
* **hang-worker** — the worker sleeps past the cell timeout and is
  terminated by the supervisor;
* **slow-cell** — the worker sleeps a sub-timeout delay, then completes
  (exercises the deadline without tripping it);
* **corrupt-cache-entry** — the worker truncates its own just-stored
  cache entry *after* reporting, poisoning a future resume (which the
  cache's digest check must quarantine and recompute).

:func:`run_sweep_soak` is the proof harness behind ``repro faults --layer
sweep``: an undisturbed serial grid, the same grid supervised under
chaos, then a corrupted-cache resume — all three must produce identical
:class:`~repro.experiments.sweep.SweepResult` contents (metrics *and*
merged telemetry snapshot), and the resume must recompute only the cells
whose entries were corrupted.

The fabric half (:class:`FabricChaos`, :func:`run_fabric_soak`, behind
``repro faults --layer fabric``) attacks the *distributed* machinery
instead: worker kills mid-lease, heartbeat stalls, torn lease files,
duplicate claims from clock-skewed phantom peers, and per-owner clock
skew — and requires every multi-worker drain to stay byte-identical to
the serial grid with a duplicate-free fenced-store journal.
"""

from __future__ import annotations

import dataclasses
import os
import shutil
import tempfile
from dataclasses import dataclass

from repro.crypto.rng import HardwareRng
from repro.experiments import cache as result_cache
from repro.experiments import runner
from repro.experiments.config import MachineConfig, TABLE1_256K
from repro.experiments.supervisor import SupervisorPolicy, run_grid_supervised
from repro.experiments.sweep import run_grid

__all__ = [
    "ChaosSpec",
    "SweepChaos",
    "run_sweep_soak",
    "render_soak_report",
    "FabricChaosSpec",
    "FabricChaos",
    "run_fabric_soak",
    "render_fabric_soak_report",
]


@dataclass(frozen=True)
class ChaosSpec:
    """Injection rates (per cell attempt) and timing of the four sabotages.

    Rates are cumulative probabilities over one uniform roll, so they must
    sum to at most 1.  By default chaos fires only on a cell's *first*
    attempt — retries run clean, so a bounded-retry supervisor provably
    converges; set ``first_attempt_only=False`` to test retry exhaustion.
    """

    kill_rate: float = 0.0
    hang_rate: float = 0.0
    slow_rate: float = 0.0
    corrupt_rate: float = 0.0
    hang_seconds: float = 30.0
    slow_seconds: float = 0.05
    seed: int = 0xC4A05
    first_attempt_only: bool = True

    def __post_init__(self) -> None:
        rates = (self.kill_rate, self.hang_rate, self.slow_rate, self.corrupt_rate)
        if any(not 0.0 <= rate <= 1.0 for rate in rates):
            raise ValueError(f"rates must be in [0, 1], got {rates}")
        if sum(rates) > 1.0:
            raise ValueError(f"rates must sum to <= 1, got {sum(rates)}")


class SweepChaos:
    """Seeded sabotage plan consulted by the supervisor per (cell, attempt).

    Decisions are pure functions of ``(spec.seed, cell_key, attempt)`` —
    the same plan replayed against the same sweep sabotages the same
    cells, making every soak failure reproducible.
    """

    def __init__(self, spec: ChaosSpec):
        self.spec = spec
        self.planned: list[tuple[str, int, str]] = []  # (cell_key, attempt, action)

    def action_for(self, cell_key: str, attempt: int) -> tuple[str, float] | None:
        """The sabotage for this attempt: ``(action, seconds)`` or None."""
        spec = self.spec
        if spec.first_attempt_only and attempt > 0:
            return None
        rng = HardwareRng(
            (spec.seed ^ int(cell_key[:16], 16) ^ (attempt * 0x9E37)) & (2**64 - 1)
        )
        roll = rng.next_float()
        action: tuple[str, float] | None = None
        if roll < spec.kill_rate:
            action = ("kill", 0.0)
        elif roll < spec.kill_rate + spec.hang_rate:
            action = ("hang", spec.hang_seconds)
        elif roll < spec.kill_rate + spec.hang_rate + spec.slow_rate:
            action = ("slow", spec.slow_seconds)
        elif (
            roll
            < spec.kill_rate + spec.hang_rate + spec.slow_rate + spec.corrupt_rate
        ):
            action = ("corrupt", 0.0)
        if action is not None:
            self.planned.append((cell_key, attempt, action[0]))
        return action


# -- the soak ------------------------------------------------------------------


def _metrics_dicts(sweep) -> dict:
    return {
        f"{benchmark}/{scheme}": dataclasses.asdict(metrics)
        for (benchmark, scheme), metrics in sweep.results.items()
    }


def _merged_values(sweep) -> dict:
    merged = sweep.merged_snapshot()
    return merged.values if merged is not None else {}


def run_sweep_soak(
    benchmarks: tuple[str, ...] = ("gzip", "art"),
    schemes: tuple[str, ...] = ("oracle", "pred_regular"),
    machine: MachineConfig = TABLE1_256K,
    references: int = 3000,
    seed: int = 1,
    jobs: int = 2,
    chaos_spec: ChaosSpec | None = None,
    policy: SupervisorPolicy | None = None,
    corrupt_cells: int = 2,
    cache_dir: str | None = None,
) -> dict:
    """Chaos soak: serial truth vs supervised-under-chaos vs poisoned resume.

    Three passes over the same grid, against a private temporary cache so
    the user's ``.repro-cache`` is never touched:

    1. **serial** — plain ``run_grid``, no cache, no chaos: ground truth.
    2. **supervised + chaos** — kill/hang/slow/corrupt injection under a
       short cell timeout; must converge to the serial result.
    3. **poisoned resume** — ``corrupt_cells`` cache entries are truncated
       by hand, then the sweep resumes from its manifest: intact cells
       must be served from cache, corrupt ones quarantined and recomputed,
       and the result must *still* equal the serial truth.

    Returns a machine-readable report; ``report["ok"]`` is the verdict.
    With ``cache_dir`` the soak's cache (quarantine tier, manifests) is
    kept there for post-mortem instead of a deleted temp directory.
    """
    # hang_seconds must exceed the cell timeout, or a "hang" degenerates
    # into a long "slow" and the timeout path goes unexercised.
    chaos_spec = chaos_spec or ChaosSpec(
        kill_rate=0.25, hang_rate=0.15, slow_rate=0.2, corrupt_rate=0.2,
        hang_seconds=60.0, slow_seconds=0.02,
    )
    policy = policy or SupervisorPolicy(
        cell_timeout_seconds=15.0,
        max_retries=2,
        backoff_base_seconds=0.01,
        backoff_cap_seconds=0.1,
    )

    serial = run_grid(
        list(benchmarks), list(schemes), machine=machine,
        references=references, seed=seed,
    )
    serial_metrics = _metrics_dicts(serial)
    serial_snapshot = _merged_values(serial)

    keep_cache = cache_dir is not None
    if keep_cache:
        os.makedirs(cache_dir, exist_ok=True)
    else:
        cache_dir = tempfile.mkdtemp(prefix="repro-soak-cache-")
    saved_env = os.environ.get(result_cache.CACHE_DIR_ENV)
    os.environ[result_cache.CACHE_DIR_ENV] = cache_dir
    result_cache.reset_default_cache()
    runner._MISS_TRACE_CACHE.clear()
    try:
        chaos = SweepChaos(chaos_spec)
        supervised = run_grid_supervised(
            list(benchmarks), list(schemes), machine=machine,
            references=references, seed=seed, jobs=jobs,
            policy=policy, chaos=chaos,
        )

        # Poison the cache: hand-truncate result entries the chaos run left
        # intact.  Cells the "corrupt" injector already truncated in-worker
        # count toward the recompute budget too, so track keys, not counts.
        disk = result_cache.default_cache()
        chaos_corrupted = {
            key for key, _, action in chaos.planned if action == "corrupt"
        }
        entry_paths = sorted(
            p
            for p in (disk.root / "results").rglob("*.json")
            if p.is_file() and p.stem not in chaos_corrupted
        )
        poisoned_keys = set(chaos_corrupted)
        for path in entry_paths[: max(0, corrupt_cells)]:
            data = path.read_bytes()
            path.write_bytes(data[: len(data) // 3])
            poisoned_keys.add(path.stem)
        poisoned = len(poisoned_keys)

        disk.stats = result_cache.CacheStats()
        runner._MISS_TRACE_CACHE.clear()
        resumed = run_grid_supervised(
            list(benchmarks), list(schemes), machine=machine,
            references=references, seed=seed, jobs=jobs,
            policy=policy, resume=True,
        )
        resumed_stats = resumed.supervision or {}
        quarantine_entries = sorted(
            p.name
            for p in (disk.root / "quarantine").rglob("*")
            if p.is_file() and p.suffix == ".json"
        )

        supervised_identical = (
            _metrics_dicts(supervised) == serial_metrics
            and _merged_values(supervised) == serial_snapshot
        )
        resumed_identical = (
            _metrics_dicts(resumed) == serial_metrics
            and _merged_values(resumed) == serial_snapshot
        )
        total_cells = len(benchmarks) * len(schemes)
        resume_exact = (
            resumed_stats.get("cells_resumed") == total_cells - poisoned
            and resumed_stats.get("cells_completed") == poisoned
        )
        report = {
            "benchmarks": list(benchmarks),
            "schemes": list(schemes),
            "references": references,
            "seed": seed,
            "jobs": jobs,
            "cells": total_cells,
            "chaos": {
                "planned": [
                    {"cell_key": key[:12], "attempt": attempt, "action": action}
                    for key, attempt, action in chaos.planned
                ],
                "spec": dataclasses.asdict(chaos_spec),
            },
            "supervision": supervised.supervision,
            "supervised_identical_to_serial": supervised_identical,
            "poisoned_entries": poisoned,
            "resume": resumed_stats,
            "resume_quarantined": quarantine_entries,
            "resume_recomputed_only_poisoned": resume_exact,
            "resumed_identical_to_serial": resumed_identical,
            "ok": supervised_identical and resumed_identical and resume_exact,
        }
        return report
    finally:
        if saved_env is None:
            os.environ.pop(result_cache.CACHE_DIR_ENV, None)
        else:
            os.environ[result_cache.CACHE_DIR_ENV] = saved_env
        result_cache.reset_default_cache()
        runner._MISS_TRACE_CACHE.clear()
        if not keep_cache:
            shutil.rmtree(cache_dir, ignore_errors=True)


def render_soak_report(report: dict) -> str:
    """Human-readable verdict of one :func:`run_sweep_soak` run."""
    supervision = report.get("supervision") or {}
    resume = report.get("resume") or {}
    actions = [entry["action"] for entry in report["chaos"]["planned"]]
    lines = [
        f"Sweep chaos soak ({report['cells']} cells, seed {report['seed']}, "
        f"jobs {report['jobs']})",
        f"chaos injected: {len(actions)} "
        f"({', '.join(sorted(set(actions))) or 'none'})",
        f"supervision: retries={supervision.get('retries')} "
        f"timeouts={supervision.get('timeouts')} "
        f"deaths={supervision.get('worker_deaths')} "
        f"degraded={supervision.get('degraded_cells')}",
        f"supervised == serial: {report['supervised_identical_to_serial']}",
        f"poisoned {report['poisoned_entries']} entries -> resume "
        f"served {resume.get('cells_resumed')} from cache, "
        f"recomputed {resume.get('cells_completed')}, "
        f"quarantined {len(report['resume_quarantined'])}",
        f"resume recomputed only poisoned cells: "
        f"{report['resume_recomputed_only_poisoned']}",
        f"resumed == serial: {report['resumed_identical_to_serial']}",
        f"verdict: {'OK' if report['ok'] else 'FAILED'}",
    ]
    return "\n".join(lines)


# -- fabric chaos --------------------------------------------------------------


@dataclass(frozen=True)
class FabricChaosSpec:
    """Injection rates (per first claim of a cell by an owner) for the
    distributed-fabric sabotages, plus per-owner clock skew.

    Rates are cumulative probabilities over one uniform roll and must sum
    to at most 1.  Owners listed in ``immune_owners`` receive no actions
    at all — a soak must keep at least one worker immune from ``kill`` or
    a drain can run out of survivors and stall instead of converging.
    """

    kill_rate: float = 0.0
    stall_rate: float = 0.0
    torn_rate: float = 0.0
    dup_rate: float = 0.0
    stall_seconds: float = 5.0
    clock_skew_seconds: float = 0.0
    seed: int = 0xFAB01
    immune_owners: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        rates = (self.kill_rate, self.stall_rate, self.torn_rate, self.dup_rate)
        if any(not 0.0 <= rate <= 1.0 for rate in rates):
            raise ValueError(f"rates must be in [0, 1], got {rates}")
        if sum(rates) > 1.0:
            raise ValueError(f"rates must sum to <= 1, got {sum(rates)}")
        if self.clock_skew_seconds < 0:
            raise ValueError("clock_skew_seconds must be >= 0")


def _owner_hash(owner: str) -> int:
    import hashlib

    return int.from_bytes(hashlib.sha256(owner.encode()).digest()[:8], "big")


class FabricChaos:
    """Seeded sabotage plan consulted by fabric workers per (owner, cell).

    Decisions are pure functions of ``(spec.seed, owner, cell_key)`` so
    every worker process derives the same plan from the same spec — but
    each action fires **at most once** per (owner, cell): a cell whose
    first attempt was sabotaged is retried clean (possibly by the same
    owner after a takeover), so chaotic drains provably converge.
    """

    def __init__(self, spec: FabricChaosSpec):
        self.spec = spec
        self.planned: list[tuple[str, str, str]] = []  # (owner, cell_key, action)
        self._fired: set[tuple[str, str]] = set()

    def clock_skew_for(self, owner: str) -> float:
        """This owner's wall-clock skew in seconds (symmetric, seeded).

        Skew shifts every lease-expiry comparison the owner makes; the
        fencing tokens — not the clocks — are what keep results correct.
        """
        spec = self.spec
        if spec.clock_skew_seconds <= 0 or owner in spec.immune_owners:
            return 0.0
        rng = HardwareRng((spec.seed ^ _owner_hash(owner) ^ 0x5C3E) & (2**64 - 1))
        return (rng.next_float() * 2.0 - 1.0) * spec.clock_skew_seconds

    def action_for(self, owner: str, cell_key: str) -> tuple[str, float] | None:
        """The sabotage for this claim: ``(action, seconds)`` or None."""
        spec = self.spec
        if owner in spec.immune_owners or (owner, cell_key) in self._fired:
            return None
        rng = HardwareRng(
            (spec.seed ^ _owner_hash(owner) ^ int(cell_key[:16], 16))
            & (2**64 - 1)
        )
        roll = rng.next_float()
        action: tuple[str, float] | None = None
        if roll < spec.kill_rate:
            action = ("kill", 0.0)
        elif roll < spec.kill_rate + spec.stall_rate:
            action = ("stall", spec.stall_seconds)
        elif roll < spec.kill_rate + spec.stall_rate + spec.torn_rate:
            action = ("torn", 0.0)
        elif (
            roll
            < spec.kill_rate + spec.stall_rate + spec.torn_rate + spec.dup_rate
        ):
            action = ("dup", 0.0)
        if action is not None:
            self._fired.add((owner, cell_key))
            self.planned.append((owner, cell_key, action[0]))
        return action


# -- the fabric soak -----------------------------------------------------------


def _fresh_cache(cache_dir: str) -> None:
    os.makedirs(cache_dir, exist_ok=True)
    os.environ[result_cache.CACHE_DIR_ENV] = cache_dir
    result_cache.reset_default_cache()
    runner._MISS_TRACE_CACHE.clear()


def run_fabric_soak(
    benchmarks: tuple[str, ...] = ("gzip", "art"),
    schemes: tuple[str, ...] = ("oracle", "pred_regular"),
    machine: MachineConfig = TABLE1_256K,
    references: int = 3000,
    seed: int = 1,
    chaos_spec: FabricChaosSpec | None = None,
    ttl_seconds: float = 2.0,
    cache_dir: str | None = None,
) -> dict:
    """Partition-chaos soak for the distributed sweep fabric.

    Four drains of the same grid, each against its own private cache:

    1. **serial** — plain ``run_grid``: ground truth.
    2. **duo** — a clean 2-worker fabric drain; must equal serial.
    3. **chaos** — a 4-worker drain under kill/stall/torn/dup injection
       with per-owner clock skew; the in-process worker is kill-immune so
       the drain always has a survivor.  Must equal serial, and the store
       journal must contain no duplicate ``(cell, token)`` — fencing let
       exactly one store land per token.
    4. **takeover** — one worker is chaos-killed mid-lease on its first
       cell; the surviving worker must take the lease over after the TTL
       and finish the grid.  Must equal serial with ≥1 takeover and the
       killed worker's recognizable exit code.

    "Equal" means metrics *and* the merged telemetry snapshot compare
    byte-identical after canonical JSON serialization.  Returns a
    machine-readable report; ``report["ok"]`` is the verdict.  With
    ``cache_dir`` the phase caches (leases, manifests, journals) are kept
    under it for post-mortem.
    """
    import json as _json

    from repro.fabric import SwarmSpec, drain_swarm
    from repro.fabric.worker import CHAOS_KILL_EXIT, FabricPolicy

    chaos_spec = chaos_spec or FabricChaosSpec(
        kill_rate=0.2, stall_rate=0.25, torn_rate=0.2, dup_rate=0.25,
        stall_seconds=ttl_seconds * 2.5, clock_skew_seconds=ttl_seconds,
        immune_owners=("c0",),
    )
    policy = FabricPolicy(
        ttl_seconds=ttl_seconds,
        claim_backoff_seconds=0.02,
        claim_backoff_cap_seconds=0.25,
        drain_timeout_seconds=600.0,
    )
    spec = SwarmSpec(
        benchmarks=tuple(benchmarks), schemes=tuple(schemes),
        machine=machine.name, references=references, seed=seed,
    )

    keep_cache = cache_dir is not None
    if keep_cache:
        os.makedirs(cache_dir, exist_ok=True)
    else:
        cache_dir = tempfile.mkdtemp(prefix="repro-fabric-soak-")
    saved_env = os.environ.get(result_cache.CACHE_DIR_ENV)
    phase_dirs = {
        name: os.path.join(cache_dir, name)
        for name in ("serial", "duo", "chaos", "takeover")
    }
    try:
        _fresh_cache(phase_dirs["serial"])
        serial = run_grid(
            list(benchmarks), list(schemes), machine=machine,
            references=references, seed=seed,
        )
        serial_metrics = _json.dumps(_metrics_dicts(serial), sort_keys=True)
        serial_snapshot = _json.dumps(_merged_values(serial), sort_keys=True)

        def identical(sweep) -> bool:
            return (
                _json.dumps(_metrics_dicts(sweep), sort_keys=True)
                == serial_metrics
                and _json.dumps(_merged_values(sweep), sort_keys=True)
                == serial_snapshot
            )

        _fresh_cache(phase_dirs["duo"])
        duo = drain_swarm(spec, workers=2, policy=policy, owner_prefix="d")
        duo_ok = identical(duo) and not duo.fabric["degraded"]

        _fresh_cache(phase_dirs["chaos"])
        chaos = FabricChaos(chaos_spec)
        chaotic = drain_swarm(
            spec, workers=4, policy=policy, chaos=chaos, owner_prefix="c",
        )
        # Injections fire inside each worker's *own* copy of the chaos
        # plan, so the authoritative record is the shared manifest: every
        # sabotaged claim journaled a start event with a chaos tag.
        injected = []
        from repro.experiments.supervisor import manifest_path as _mpath

        manifest_file = _mpath(phase_dirs["chaos"], spec.key)
        for line in manifest_file.read_text().splitlines():
            try:
                entry = _json.loads(line)
            except ValueError:
                continue
            if entry.get("event") == "start" and entry.get("chaos"):
                injected.append(
                    {
                        "owner": entry.get("owner"),
                        "cell_key": entry.get("key", "")[:12],
                        "action": entry["chaos"],
                    }
                )
        tokens = chaotic.fabric["stored_tokens"]
        unique_tokens = len({(key, token) for key, token, _ in tokens}) == len(
            tokens
        )
        chaos_ok = identical(chaotic) and unique_tokens

        _fresh_cache(phase_dirs["takeover"])
        # Deterministic targeted kill: the forked worker "t1" dies on its
        # very first claim; the in-process "t0" is immune and must take
        # the orphaned lease over once its TTL lapses.
        kill_chaos = FabricChaos(
            FabricChaosSpec(kill_rate=1.0, immune_owners=("t0",))
        )
        takeover = drain_swarm(
            spec, workers=2, policy=policy, chaos=kill_chaos, owner_prefix="t",
        )
        takeovers = takeover.fabric["local_leases"]["taken_over"]
        kill_seen = CHAOS_KILL_EXIT in takeover.fabric["worker_exit_codes"]
        takeover_ok = identical(takeover) and takeovers >= 1 and kill_seen

        report = {
            "benchmarks": list(benchmarks),
            "schemes": list(schemes),
            "references": references,
            "seed": seed,
            "cells": len(benchmarks) * len(schemes),
            "ttl_seconds": ttl_seconds,
            "chaos": {
                "spec": dataclasses.asdict(chaos_spec),
                "planned": injected,
            },
            "duo": {
                "identical_to_serial": duo_ok,
                "fabric": duo.fabric,
            },
            "chaos_drain": {
                "identical_to_serial": identical(chaotic),
                "unique_store_tokens": unique_tokens,
                "fabric": chaotic.fabric,
            },
            "takeover": {
                "identical_to_serial": identical(takeover),
                "takeovers": takeovers,
                "kill_exit_seen": kill_seen,
                "fabric": takeover.fabric,
            },
            "ok": duo_ok and chaos_ok and takeover_ok,
        }
        return report
    finally:
        if saved_env is None:
            os.environ.pop(result_cache.CACHE_DIR_ENV, None)
        else:
            os.environ[result_cache.CACHE_DIR_ENV] = saved_env
        result_cache.reset_default_cache()
        runner._MISS_TRACE_CACHE.clear()
        if not keep_cache:
            shutil.rmtree(cache_dir, ignore_errors=True)


def render_fabric_soak_report(report: dict) -> str:
    """Human-readable verdict of one :func:`run_fabric_soak` run."""
    duo = report["duo"]
    chaos = report["chaos_drain"]
    takeover = report["takeover"]
    actions = [entry["action"] for entry in report["chaos"]["planned"]]
    lines = [
        f"Fabric chaos soak ({report['cells']} cells, seed {report['seed']}, "
        f"ttl {report['ttl_seconds']}s)",
        f"2-worker drain == serial: {duo['identical_to_serial']}",
        f"chaos injected: {len(actions)} "
        f"({', '.join(sorted(set(actions))) or 'none'})",
        f"4-worker chaos drain == serial: {chaos['identical_to_serial']}",
        f"store journal tokens unique: {chaos['unique_store_tokens']}",
        f"takeover drain == serial: {takeover['identical_to_serial']} "
        f"(takeovers {takeover['takeovers']}, "
        f"kill exit seen {takeover['kill_exit_seen']})",
        f"verdict: {'OK' if report['ok'] else 'FAILED'}",
    ]
    return "\n".join(lines)
