"""Orchestration chaos: seeded sabotage for the supervised sweep executor.

PR 1's :class:`~repro.faults.injector.FaultInjector` attacks the *simulated*
machine; this module attacks the *machinery that runs the experiments* —
worker processes and the on-disk result cache — and proves the supervisor
(:mod:`repro.experiments.supervisor`) absorbs it.  Four injectors, all
derived deterministically from one seed:

* **kill-worker** — the worker calls ``os._exit`` before computing, the
  parent sees a death with no result;
* **hang-worker** — the worker sleeps past the cell timeout and is
  terminated by the supervisor;
* **slow-cell** — the worker sleeps a sub-timeout delay, then completes
  (exercises the deadline without tripping it);
* **corrupt-cache-entry** — the worker truncates its own just-stored
  cache entry *after* reporting, poisoning a future resume (which the
  cache's digest check must quarantine and recompute).

:func:`run_sweep_soak` is the proof harness behind ``repro faults --layer
sweep``: an undisturbed serial grid, the same grid supervised under
chaos, then a corrupted-cache resume — all three must produce identical
:class:`~repro.experiments.sweep.SweepResult` contents (metrics *and*
merged telemetry snapshot), and the resume must recompute only the cells
whose entries were corrupted.
"""

from __future__ import annotations

import dataclasses
import os
import shutil
import tempfile
from dataclasses import dataclass

from repro.crypto.rng import HardwareRng
from repro.experiments import cache as result_cache
from repro.experiments import runner
from repro.experiments.config import MachineConfig, TABLE1_256K
from repro.experiments.supervisor import SupervisorPolicy, run_grid_supervised
from repro.experiments.sweep import run_grid

__all__ = [
    "ChaosSpec",
    "SweepChaos",
    "run_sweep_soak",
    "render_soak_report",
]


@dataclass(frozen=True)
class ChaosSpec:
    """Injection rates (per cell attempt) and timing of the four sabotages.

    Rates are cumulative probabilities over one uniform roll, so they must
    sum to at most 1.  By default chaos fires only on a cell's *first*
    attempt — retries run clean, so a bounded-retry supervisor provably
    converges; set ``first_attempt_only=False`` to test retry exhaustion.
    """

    kill_rate: float = 0.0
    hang_rate: float = 0.0
    slow_rate: float = 0.0
    corrupt_rate: float = 0.0
    hang_seconds: float = 30.0
    slow_seconds: float = 0.05
    seed: int = 0xC4A05
    first_attempt_only: bool = True

    def __post_init__(self) -> None:
        rates = (self.kill_rate, self.hang_rate, self.slow_rate, self.corrupt_rate)
        if any(not 0.0 <= rate <= 1.0 for rate in rates):
            raise ValueError(f"rates must be in [0, 1], got {rates}")
        if sum(rates) > 1.0:
            raise ValueError(f"rates must sum to <= 1, got {sum(rates)}")


class SweepChaos:
    """Seeded sabotage plan consulted by the supervisor per (cell, attempt).

    Decisions are pure functions of ``(spec.seed, cell_key, attempt)`` —
    the same plan replayed against the same sweep sabotages the same
    cells, making every soak failure reproducible.
    """

    def __init__(self, spec: ChaosSpec):
        self.spec = spec
        self.planned: list[tuple[str, int, str]] = []  # (cell_key, attempt, action)

    def action_for(self, cell_key: str, attempt: int) -> tuple[str, float] | None:
        """The sabotage for this attempt: ``(action, seconds)`` or None."""
        spec = self.spec
        if spec.first_attempt_only and attempt > 0:
            return None
        rng = HardwareRng(
            (spec.seed ^ int(cell_key[:16], 16) ^ (attempt * 0x9E37)) & (2**64 - 1)
        )
        roll = rng.next_float()
        action: tuple[str, float] | None = None
        if roll < spec.kill_rate:
            action = ("kill", 0.0)
        elif roll < spec.kill_rate + spec.hang_rate:
            action = ("hang", spec.hang_seconds)
        elif roll < spec.kill_rate + spec.hang_rate + spec.slow_rate:
            action = ("slow", spec.slow_seconds)
        elif (
            roll
            < spec.kill_rate + spec.hang_rate + spec.slow_rate + spec.corrupt_rate
        ):
            action = ("corrupt", 0.0)
        if action is not None:
            self.planned.append((cell_key, attempt, action[0]))
        return action


# -- the soak ------------------------------------------------------------------


def _metrics_dicts(sweep) -> dict:
    return {
        f"{benchmark}/{scheme}": dataclasses.asdict(metrics)
        for (benchmark, scheme), metrics in sweep.results.items()
    }


def _merged_values(sweep) -> dict:
    merged = sweep.merged_snapshot()
    return merged.values if merged is not None else {}


def run_sweep_soak(
    benchmarks: tuple[str, ...] = ("gzip", "art"),
    schemes: tuple[str, ...] = ("oracle", "pred_regular"),
    machine: MachineConfig = TABLE1_256K,
    references: int = 3000,
    seed: int = 1,
    jobs: int = 2,
    chaos_spec: ChaosSpec | None = None,
    policy: SupervisorPolicy | None = None,
    corrupt_cells: int = 2,
    cache_dir: str | None = None,
) -> dict:
    """Chaos soak: serial truth vs supervised-under-chaos vs poisoned resume.

    Three passes over the same grid, against a private temporary cache so
    the user's ``.repro-cache`` is never touched:

    1. **serial** — plain ``run_grid``, no cache, no chaos: ground truth.
    2. **supervised + chaos** — kill/hang/slow/corrupt injection under a
       short cell timeout; must converge to the serial result.
    3. **poisoned resume** — ``corrupt_cells`` cache entries are truncated
       by hand, then the sweep resumes from its manifest: intact cells
       must be served from cache, corrupt ones quarantined and recomputed,
       and the result must *still* equal the serial truth.

    Returns a machine-readable report; ``report["ok"]`` is the verdict.
    With ``cache_dir`` the soak's cache (quarantine tier, manifests) is
    kept there for post-mortem instead of a deleted temp directory.
    """
    # hang_seconds must exceed the cell timeout, or a "hang" degenerates
    # into a long "slow" and the timeout path goes unexercised.
    chaos_spec = chaos_spec or ChaosSpec(
        kill_rate=0.25, hang_rate=0.15, slow_rate=0.2, corrupt_rate=0.2,
        hang_seconds=60.0, slow_seconds=0.02,
    )
    policy = policy or SupervisorPolicy(
        cell_timeout_seconds=15.0,
        max_retries=2,
        backoff_base_seconds=0.01,
        backoff_cap_seconds=0.1,
    )

    serial = run_grid(
        list(benchmarks), list(schemes), machine=machine,
        references=references, seed=seed,
    )
    serial_metrics = _metrics_dicts(serial)
    serial_snapshot = _merged_values(serial)

    keep_cache = cache_dir is not None
    if keep_cache:
        os.makedirs(cache_dir, exist_ok=True)
    else:
        cache_dir = tempfile.mkdtemp(prefix="repro-soak-cache-")
    saved_env = os.environ.get(result_cache.CACHE_DIR_ENV)
    os.environ[result_cache.CACHE_DIR_ENV] = cache_dir
    result_cache.reset_default_cache()
    runner._MISS_TRACE_CACHE.clear()
    try:
        chaos = SweepChaos(chaos_spec)
        supervised = run_grid_supervised(
            list(benchmarks), list(schemes), machine=machine,
            references=references, seed=seed, jobs=jobs,
            policy=policy, chaos=chaos,
        )

        # Poison the cache: hand-truncate result entries the chaos run left
        # intact.  Cells the "corrupt" injector already truncated in-worker
        # count toward the recompute budget too, so track keys, not counts.
        disk = result_cache.default_cache()
        chaos_corrupted = {
            key for key, _, action in chaos.planned if action == "corrupt"
        }
        entry_paths = sorted(
            p
            for p in (disk.root / "results").rglob("*.json")
            if p.is_file() and p.stem not in chaos_corrupted
        )
        poisoned_keys = set(chaos_corrupted)
        for path in entry_paths[: max(0, corrupt_cells)]:
            data = path.read_bytes()
            path.write_bytes(data[: len(data) // 3])
            poisoned_keys.add(path.stem)
        poisoned = len(poisoned_keys)

        disk.stats = result_cache.CacheStats()
        runner._MISS_TRACE_CACHE.clear()
        resumed = run_grid_supervised(
            list(benchmarks), list(schemes), machine=machine,
            references=references, seed=seed, jobs=jobs,
            policy=policy, resume=True,
        )
        resumed_stats = resumed.supervision or {}
        quarantine_entries = sorted(
            p.name
            for p in (disk.root / "quarantine").rglob("*")
            if p.is_file() and p.suffix == ".json"
        )

        supervised_identical = (
            _metrics_dicts(supervised) == serial_metrics
            and _merged_values(supervised) == serial_snapshot
        )
        resumed_identical = (
            _metrics_dicts(resumed) == serial_metrics
            and _merged_values(resumed) == serial_snapshot
        )
        total_cells = len(benchmarks) * len(schemes)
        resume_exact = (
            resumed_stats.get("cells_resumed") == total_cells - poisoned
            and resumed_stats.get("cells_completed") == poisoned
        )
        report = {
            "benchmarks": list(benchmarks),
            "schemes": list(schemes),
            "references": references,
            "seed": seed,
            "jobs": jobs,
            "cells": total_cells,
            "chaos": {
                "planned": [
                    {"cell_key": key[:12], "attempt": attempt, "action": action}
                    for key, attempt, action in chaos.planned
                ],
                "spec": dataclasses.asdict(chaos_spec),
            },
            "supervision": supervised.supervision,
            "supervised_identical_to_serial": supervised_identical,
            "poisoned_entries": poisoned,
            "resume": resumed_stats,
            "resume_quarantined": quarantine_entries,
            "resume_recomputed_only_poisoned": resume_exact,
            "resumed_identical_to_serial": resumed_identical,
            "ok": supervised_identical and resumed_identical and resume_exact,
        }
        return report
    finally:
        if saved_env is None:
            os.environ.pop(result_cache.CACHE_DIR_ENV, None)
        else:
            os.environ[result_cache.CACHE_DIR_ENV] = saved_env
        result_cache.reset_default_cache()
        runner._MISS_TRACE_CACHE.clear()
        if not keep_cache:
            shutil.rmtree(cache_dir, ignore_errors=True)


def render_soak_report(report: dict) -> str:
    """Human-readable verdict of one :func:`run_sweep_soak` run."""
    supervision = report.get("supervision") or {}
    resume = report.get("resume") or {}
    actions = [entry["action"] for entry in report["chaos"]["planned"]]
    lines = [
        f"Sweep chaos soak ({report['cells']} cells, seed {report['seed']}, "
        f"jobs {report['jobs']})",
        f"chaos injected: {len(actions)} "
        f"({', '.join(sorted(set(actions))) or 'none'})",
        f"supervision: retries={supervision.get('retries')} "
        f"timeouts={supervision.get('timeouts')} "
        f"deaths={supervision.get('worker_deaths')} "
        f"degraded={supervision.get('degraded_cells')}",
        f"supervised == serial: {report['supervised_identical_to_serial']}",
        f"poisoned {report['poisoned_entries']} entries -> resume "
        f"served {resume.get('cells_resumed')} from cache, "
        f"recomputed {resume.get('cells_completed')}, "
        f"quarantined {len(report['resume_quarantined'])}",
        f"resume recomputed only poisoned cells: "
        f"{report['resume_recomputed_only_poisoned']}",
        f"resumed == serial: {report['resumed_identical_to_serial']}",
        f"verdict: {'OK' if report['ok'] else 'FAILED'}",
    ]
    return "\n".join(lines)
