"""Fault campaigns: sweep fault types x rates, report detection/recovery.

A campaign answers, with numbers, the question the paper leaves to an
assumption: *does the integrity substrate detect what an untrusted-DRAM
adversary can do, and does the controller survive it?*  For every
(fault type, rate) cell it builds a fresh functional tree-protected
controller with a :class:`~repro.secure.controller.RecoveryPolicy`, runs a
seeded mixed fetch/write-back workload while the
:class:`~repro.faults.injector.FaultInjector` fires, and attributes every
detection, retry-recovery and quarantine to the fault that caused it.  Two
deterministic demos complete the report: forced graceful degradation to the
non-speculative path, and forced counter saturation showing page
re-encryption with a clean pad-reuse audit.

Everything is seeded, so a campaign is a reproducible experiment, and
:meth:`CampaignReport.to_dict` is stable machine-readable output for CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.rng import HardwareRng
from repro.experiments.parallel import parallel_map
from repro.faults.injector import FaultInjector, FaultType
from repro.secure.controller import RecoveryPolicy, SecureMemoryController
from repro.secure.errors import FetchFailedError, SecureMemoryError
from repro.secure.predictors import RegularOtpPredictor
from repro.secure.seqnum import PageSecurityTable

__all__ = [
    "CampaignCell",
    "CampaignReport",
    "FaultCampaign",
    "run_smoke_campaign",
]

_MASK64 = (1 << 64) - 1

DEFAULT_FAULT_TYPES = (
    FaultType.BIT_FLIP,
    FaultType.COUNTER_CORRUPT,
    FaultType.MAC_TAMPER,
    FaultType.TREE_NODE_TAMPER,
    FaultType.REPLAY,
    FaultType.DROP,
    FaultType.DELAY,
)

DEFAULT_RATES = (0.05, 0.15, 0.3)


@dataclass
class CampaignCell:
    """Detection/recovery tallies for one (fault type, rate) grid point."""

    fault_type: FaultType
    rate: float
    operations: int = 0
    injected: int = 0
    detected: int = 0
    undetected: int = 0
    recovered: int = 0
    quarantined: int = 0
    spurious: int = 0                 # detection signal with no fault injected
    errors: dict[str, int] = field(default_factory=dict)

    @property
    def detection_rate(self) -> float | None:
        """Detected / injected; None for faults detection doesn't apply to."""
        if not self.fault_type.integrity_violating and self.fault_type is not FaultType.DROP:
            return None
        if not self.injected:
            return 1.0
        return self.detected / self.injected

    def to_dict(self) -> dict:
        return {
            "fault_type": self.fault_type.value,
            "rate": self.rate,
            "operations": self.operations,
            "injected": self.injected,
            "detected": self.detected,
            "undetected": self.undetected,
            "recovered": self.recovered,
            "quarantined": self.quarantined,
            "spurious": self.spurious,
            "detection_rate": self.detection_rate,
            "errors": dict(self.errors),
        }


@dataclass
class CampaignReport:
    """Full campaign result: the matrix plus the two forced demos."""

    seed: int
    operations: int
    cells: list[CampaignCell]
    degradation: dict
    overflow: dict

    @property
    def all_detected(self) -> bool:
        """Every injected integrity-violating (or dropped-response) fault
        produced a detection signal."""
        return all(cell.undetected == 0 for cell in self.cells)

    @property
    def retry_recovery_demonstrated(self) -> bool:
        """At least one fetch succeeded only after policy-driven retries."""
        return any(cell.recovered > 0 for cell in self.cells)

    @property
    def degradation_demonstrated(self) -> bool:
        """The forced demo tripped speculation-disable and fell back."""
        return bool(self.degradation.get("degraded"))

    @property
    def pad_reuse_free(self) -> bool:
        """Forced counter saturation completed with a clean pad audit."""
        return bool(self.overflow.get("auditor_clean"))

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "operations": self.operations,
            "cells": [cell.to_dict() for cell in self.cells],
            "degradation": dict(self.degradation),
            "overflow": dict(self.overflow),
            "all_detected": self.all_detected,
            "retry_recovery_demonstrated": self.retry_recovery_demonstrated,
            "degradation_demonstrated": self.degradation_demonstrated,
            "pad_reuse_free": self.pad_reuse_free,
        }

    def render(self) -> str:
        """Human-readable table (the CLI's default output)."""
        lines = [
            f"Fault campaign (seed {self.seed}, {self.operations} ops/cell)",
            f"{'fault':<18}{'rate':>6}{'inject':>8}{'detect':>8}"
            f"{'miss':>6}{'recov':>7}{'quar':>6}{'det%':>7}",
        ]
        for cell in self.cells:
            rate = cell.detection_rate
            lines.append(
                f"{cell.fault_type.value:<18}{cell.rate:>6.2f}"
                f"{cell.injected:>8}{cell.detected:>8}{cell.undetected:>6}"
                f"{cell.recovered:>7}{cell.quarantined:>6}"
                f"{('  n/a' if rate is None else f'{100 * rate:>6.1f}'):>7}"
            )
        lines.append(
            f"degradation: degraded={self.degradation.get('degraded')} "
            f"after {self.degradation.get('faults_to_degrade')} faults, "
            f"post-degradation speculative blocks "
            f"+{self.degradation.get('post_degradation_speculative_blocks')}"
        )
        lines.append(
            f"counter overflow: overflows={self.overflow.get('overflows')} "
            f"pages_reencrypted={self.overflow.get('pages_reencrypted')} "
            f"pad_reuse_clean={self.overflow.get('auditor_clean')} "
            f"roundtrip_ok={self.overflow.get('roundtrip_ok')}"
        )
        lines.append(
            f"verdict: all_detected={self.all_detected} "
            f"retry_recovery={self.retry_recovery_demonstrated} "
            f"degradation={self.degradation_demonstrated} "
            f"pad_reuse_free={self.pad_reuse_free}"
        )
        return "\n".join(lines)


class FaultCampaign:
    """Seeded (fault type x rate) sweep against fresh controllers.

    Parameters
    ----------
    fault_types / rates:
        The grid; defaults cover all seven fault types at three rates.
    operations:
        Fetch operations per cell (write-backs are interleaved on top).
    seed:
        Master seed; each cell derives its own controller/injector/workload
        seeds from it, so cells are independent but replayable.
    working_set_lines:
        Lines in the victim working set (spans multiple pages).
    """

    def __init__(
        self,
        fault_types: tuple[FaultType, ...] = DEFAULT_FAULT_TYPES,
        rates: tuple[float, ...] = DEFAULT_RATES,
        operations: int = 120,
        seed: int = 1,
        key: bytes | None = None,
        recovery: RecoveryPolicy | None = None,
        working_set_lines: int = 24,
    ):
        if not fault_types:
            raise ValueError("fault_types must not be empty")
        if not rates or any(not 0.0 < rate <= 1.0 for rate in rates):
            raise ValueError(f"rates must be in (0, 1], got {rates}")
        if operations < 1:
            raise ValueError(f"operations must be >= 1, got {operations}")
        self.fault_types = tuple(fault_types)
        self.rates = tuple(rates)
        self.operations = operations
        self.seed = seed
        self.key = key if key is not None else bytes(range(32))
        self.recovery = recovery if recovery is not None else RecoveryPolicy()
        self.working_set_lines = working_set_lines

    # -- fixtures ----------------------------------------------------------------

    def _build(self, cell_seed: int):
        """Fresh (controller, injector, image, lines) for one cell."""
        table = PageSecurityTable(rng=HardwareRng(cell_seed))
        controller = SecureMemoryController(
            page_table=table,
            predictor=RegularOtpPredictor(table, depth=5),
            key=self.key,
            integrity=True,
            recovery=self.recovery,
        )
        injector = FaultInjector(controller, seed=cell_seed ^ 0xFA017)
        line_bytes = controller.address_map.line_bytes
        # Spread the working set over several pages: consecutive runs of
        # lines starting at page-aligned bases.
        per_page = max(1, self.working_set_lines // 3)
        lines = []
        base = 0x10000
        while len(lines) < self.working_set_lines:
            offset = len(lines) % per_page
            page_index = len(lines) // per_page
            lines.append(
                base
                + page_index * controller.address_map.page_bytes
                + offset * line_bytes
            )
        image = {}
        clock = 0
        for line in lines:
            image[line] = self._pattern(line, 0, line_bytes)
            clock = controller.writeback_line(clock, line, image[line]).completion_time
        # The adversary records the whole untrusted state now ...
        injector.snapshot()
        # ... then the machine moves on, so a replay is a genuine rollback.
        for line in lines:
            image[line] = self._pattern(line, 1, line_bytes)
            clock = controller.writeback_line(clock, line, image[line]).completion_time
        return controller, injector, image, lines, clock

    @staticmethod
    def _pattern(line: int, version: int, line_bytes: int) -> bytes:
        seed = (line * 0x9E3779B97F4A7C15 + version * 0xBF58476D1CE4E5B9) & _MASK64
        return seed.to_bytes(8, "big") * (line_bytes // 8)

    # -- the sweep ---------------------------------------------------------------

    def run(self, jobs: int | None = 1) -> CampaignReport:
        """Run the full grid plus the degradation and overflow demos.

        Each (fault type, rate) cell derives its own seeds from the master
        seed, so cells are independent; ``jobs`` fans them out across
        worker processes with cell-for-cell identical results.
        """
        tasks = []
        for type_index, fault_type in enumerate(self.fault_types):
            for rate_index, rate in enumerate(self.rates):
                cell_seed = (
                    self.seed * 0x1000 + type_index * 0x100 + rate_index + 1
                )
                tasks.append((self, fault_type, rate, cell_seed))
        cells = parallel_map(_run_campaign_cell, tasks, jobs=jobs)
        return CampaignReport(
            seed=self.seed,
            operations=self.operations,
            cells=cells,
            degradation=self._degradation_demo(),
            overflow=self._overflow_demo(),
        )

    def _run_cell(
        self, fault_type: FaultType, rate: float, cell_seed: int
    ) -> CampaignCell:
        controller, injector, image, lines, clock = self._build(cell_seed)
        workload_rng = HardwareRng(cell_seed ^ 0xC0FFEE)
        cell = CampaignCell(fault_type=fault_type, rate=rate)
        active = list(lines)

        for op in range(self.operations):
            if not active:
                break
            line = active[workload_rng.next_below(len(active))]
            inject = workload_rng.next_float() < rate
            if inject:
                injector.inject(fault_type, line)
                cell.injected += 1

            before = controller.resilience.as_dict()
            try:
                result = controller.fetch_line(clock, line)
                clock = result.data_ready
            except SecureMemoryError as err:
                name = type(err).__name__
                if isinstance(err, FetchFailedError) and err.cause is not None:
                    name = type(err.cause).__name__
                cell.errors[name] = cell.errors.get(name, 0) + 1
                clock += 1000
            after = controller.resilience.as_dict()

            cell.operations += 1
            signal = (
                after["integrity_faults"] > before["integrity_faults"]
                or after["dram_faults"] > before["dram_faults"]
            )
            if inject and fault_type is not FaultType.DELAY:
                if signal:
                    cell.detected += 1
                else:
                    cell.undetected += 1
            elif signal:
                cell.spurious += 1
            cell.recovered += after["recovered_fetches"] - before["recovered_fetches"]
            cell.quarantined += (
                after["quarantined_lines"] - before["quarantined_lines"]
            )

            # Repair persistent damage so the next op starts from a sound
            # machine and detections stay attributable.
            if inject and not fault_type.transient:
                injector.repair_all()
            if line in controller.quarantine and line in active:
                active.remove(line)

            # Interleave write-backs so counters advance and the tree keeps
            # moving away from the adversary's snapshot.
            if active and op % 4 == 3:
                target = active[workload_rng.next_below(len(active))]
                image[target] = self._pattern(target, 2 + op, 32)
                clock = controller.writeback_line(
                    clock, target, image[target]
                ).completion_time
        return cell

    # -- forced demos ------------------------------------------------------------

    def _degradation_demo(self) -> dict:
        """Keep tampering until speculation is disabled; show the fallback."""
        controller, injector, image, lines, clock = self._build(self.seed ^ 0xDE64)
        faults_to_degrade = 0
        for line in lines:
            if controller.degraded:
                break
            injector.inject_mac_tamper(line)
            try:
                controller.fetch_line(clock, line)
            except SecureMemoryError:
                pass
            faults_to_degrade = controller.resilience.integrity_faults
            injector.repair_all()
            clock += 1000
        healthy = [line for line in lines if line not in controller.quarantine]
        spec_before = controller.engine.stats.speculative_blocks
        post_class = None
        if controller.degraded and healthy:
            result = controller.fetch_line(clock, healthy[0])
            post_class = result.fetch_class.value
            clock = result.data_ready
        return {
            "degraded": controller.degraded,
            "faults_to_degrade": faults_to_degrade,
            "degrade_events": controller.resilience.degrade_events,
            "post_degradation_class": post_class,
            "post_degradation_speculative_blocks": (
                controller.engine.stats.speculative_blocks - spec_before
            ),
        }

    def _overflow_demo(self) -> dict:
        """Force counter saturation; verify re-encryption, no pad reuse."""
        table = PageSecurityTable(rng=HardwareRng(self.seed ^ 0x0F10))
        controller = SecureMemoryController(
            page_table=table,
            key=self.key,
            integrity=True,
            recovery=self.recovery,
        )
        line_bytes = controller.address_map.line_bytes
        line = 0x40000
        page = controller.address_map.page_number(line)
        # Drive the line to the saturation point: install a consistent
        # sealed state at seqnum 2^64 - 1 counting from the current root.
        state = controller.page_table.state(page)
        state.root = _MASK64
        old_plaintext = self._pattern(line, 0, line_bytes)
        ciphertext = controller.otp.seal(line, _MASK64, old_plaintext)
        controller.auditor.on_seal(line, _MASK64)
        controller.backing.write_line(line, ciphertext)
        controller.backing.write_seqnum(line, _MASK64)
        controller.integrity_tree.update(line, _MASK64, ciphertext)

        new_plaintext = self._pattern(line, 1, line_bytes)
        result = controller.writeback_line(0, line, new_plaintext)
        fetched = controller.fetch_line(result.completion_time + 1, line)
        return {
            "overflows": controller.resilience.counter_overflows,
            "pages_reencrypted": controller.resilience.pages_reencrypted,
            "reencrypted_page": result.reencrypted_page,
            "auditor_clean": controller.auditor.clean,
            "seals": controller.auditor.seals,
            "roundtrip_ok": fetched.plaintext == new_plaintext,
        }


def _run_campaign_cell(task) -> CampaignCell:
    """Module-level (picklable) worker body for one campaign cell."""
    campaign, fault_type, rate, cell_seed = task
    return campaign._run_cell(fault_type, rate, cell_seed)


def run_smoke_campaign(seed: int = 1) -> CampaignReport:
    """The small deterministic campaign CI runs on every push."""
    return FaultCampaign(operations=40, seed=seed, working_set_lines=12).run()
