"""Deterministic fault injector: the untrusted-DRAM adversary, on demand.

The injector attaches to a live :class:`~repro.secure.controller.
SecureMemoryController` and wraps its backing store and DRAM with thin
proxies, so every fault arrives through the same interfaces real corruption
would.  Faults come in two flavors:

* **transient** — armed against the *next* access and self-clearing: a
  ciphertext bit-flip on the wire (:attr:`FaultType.BIT_FLIP`), a dropped
  (:attr:`FaultType.DROP`) or delayed (:attr:`FaultType.DELAY`) DRAM
  response.  A bounded re-fetch under a
  :class:`~repro.secure.controller.RecoveryPolicy` recovers these.
* **persistent** — stored state is mutated and stays mutated: counter
  corruption, MAC-leaf and interior-tree-node tampering, and whole-image
  stale-state replay (ciphertext + counter + MAC rolled back together).
  Retries cannot help; detection must escalate to quarantine.

Every persistent fault records an undo closure, so a campaign can *repair*
the machine between experiments and keep attributing each detection to the
fault that caused it.  All randomness flows from a seeded
:class:`~repro.crypto.rng.HardwareRng`, making every injection replayable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.crypto.rng import HardwareRng
from repro.memory.dram import LineFetchTiming
from repro.secure.controller import SecureMemoryController
from repro.secure.errors import FetchFailedError

__all__ = ["FaultType", "InjectedFault", "FaultInjector"]


class FaultType(enum.Enum):
    """The fault/attack taxonomy a campaign sweeps over."""

    BIT_FLIP = "bit_flip"                  # transient ciphertext corruption
    COUNTER_CORRUPT = "counter_corrupt"    # stored counter overwritten
    MAC_TAMPER = "mac_tamper"              # MAC-tree leaf overwritten
    TREE_NODE_TAMPER = "tree_node_tamper"  # interior tree node overwritten
    REPLAY = "replay"                      # consistent stale-state rollback
    DROP = "drop"                          # DRAM response never arrives
    DELAY = "delay"                        # DRAM response arrives late

    @property
    def integrity_violating(self) -> bool:
        """Faults the integrity substrate is *required* to detect."""
        return self in (
            FaultType.BIT_FLIP,
            FaultType.COUNTER_CORRUPT,
            FaultType.MAC_TAMPER,
            FaultType.TREE_NODE_TAMPER,
            FaultType.REPLAY,
        )

    @property
    def transient(self) -> bool:
        """True when the fault clears itself after one observation."""
        return self in (FaultType.BIT_FLIP, FaultType.DROP, FaultType.DELAY)


@dataclass(frozen=True)
class InjectedFault:
    """One fault the injector actually applied."""

    fault_type: FaultType
    line_address: int
    detail: str


class _FaultingBackingStore:
    """Proxy over :class:`~repro.memory.backing.BackingStore` read path."""

    def __init__(self, inner, injector: "FaultInjector"):
        self._inner = inner
        self._injector = injector

    def read_line(self, address: int) -> bytes:
        data = self._inner.read_line(address)
        line = self._inner.address_map.line_address(address)
        mask = self._injector._armed_flips.pop(line, None)
        if mask is not None:
            # Transient: only the returned copy is corrupted; the stored
            # bytes stay intact, so a re-fetch sees clean data.
            corrupted = bytearray(data)
            for i, flip in enumerate(mask[: len(corrupted)]):
                corrupted[i] ^= flip
            data = bytes(corrupted)
        return data

    def __getattr__(self, name):
        return getattr(self._inner, name)


class _FaultingDram:
    """Proxy over :class:`~repro.memory.dram.Dram`'s fetch path."""

    def __init__(self, inner, injector: "FaultInjector"):
        self._inner = inner
        self._injector = injector

    def fetch_line_with_seqnum(
        self, now: int, address: int, line_bytes: int, seqnum_bytes: int = 8
    ) -> LineFetchTiming:
        injector = self._injector
        if injector._armed_drops > 0:
            injector._armed_drops -= 1
            raise FetchFailedError(
                f"injected dropped DRAM response for line {address:#x}",
                line_address=address,
            )
        timing = self._inner.fetch_line_with_seqnum(
            now, address, line_bytes, seqnum_bytes
        )
        delay = injector._armed_delay_cycles
        if delay:
            injector._armed_delay_cycles = 0
            timing = LineFetchTiming(
                issue=timing.issue,
                seqnum_ready=timing.seqnum_ready + delay,
                line_ready=timing.line_ready + delay,
            )
        return timing

    def __getattr__(self, name):
        return getattr(self._inner, name)


class FaultInjector:
    """Seeded adversary attached to one controller.

    Parameters
    ----------
    controller:
        The (preferably functional, tree-protected) controller to attack.
        Its ``backing`` and ``dram`` attributes are replaced with faulting
        proxies on attach.
    seed:
        Seed for the injector's private :class:`HardwareRng`; identical
        seeds replay identical fault streams.
    """

    def __init__(self, controller: SecureMemoryController, seed: int = 0xFA017):
        self.controller = controller
        self.rng = HardwareRng(seed)
        self.injected: list[InjectedFault] = []
        self._armed_flips: dict[int, bytes] = {}
        self._armed_drops = 0
        self._armed_delay_cycles = 0
        self._undo: list[tuple[str, object]] = []
        self._snapshot: tuple[dict, dict, dict] | None = None
        # Unwrapped views the injector (and repairs) operate on.
        self._backing = controller.backing
        self._dram = controller.dram
        controller.backing = _FaultingBackingStore(self._backing, self)
        controller.dram = _FaultingDram(self._dram, self)

    # -- bookkeeping -----------------------------------------------------------

    def _record(self, fault_type: FaultType, line: int, detail: str) -> InjectedFault:
        fault = InjectedFault(fault_type, line, detail)
        self.injected.append(fault)
        return fault

    def _tree(self):
        tree = self.controller.integrity_tree
        if tree is None:
            raise ValueError(
                "this fault type needs a tree-protected controller "
                "(integrity=True)"
            )
        return tree

    @property
    def pending_repairs(self) -> int:
        """Persistent faults currently applied and not yet repaired."""
        return len(self._undo)

    def repair_all(self) -> int:
        """Undo every outstanding persistent fault (most recent first)."""
        count = len(self._undo)
        while self._undo:
            _, undo = self._undo.pop()
            undo()
        return count

    # -- transient faults -------------------------------------------------------

    def inject_bit_flip(self, line: int) -> InjectedFault:
        """Arm a one-shot ciphertext corruption on the line's next read."""
        line = self._backing.address_map.line_address(line)
        position = self.rng.next_below(self._backing.address_map.line_bytes)
        bit = 1 << self.rng.next_bits(3)
        mask = bytearray(self._backing.address_map.line_bytes)
        mask[position] = bit
        self._armed_flips[line] = bytes(mask)
        return self._record(
            FaultType.BIT_FLIP, line, f"flip bit {bit:#04x} of byte {position}"
        )

    def inject_drop(self, line: int, count: int = 1) -> InjectedFault:
        """Drop the next ``count`` DRAM line fetches."""
        self._armed_drops += count
        return self._record(FaultType.DROP, line, f"drop next {count} response(s)")

    def inject_delay(self, line: int, cycles: int | None = None) -> InjectedFault:
        """Delay the next DRAM line fetch by ``cycles`` (random if omitted)."""
        if cycles is None:
            cycles = 100 + self.rng.next_below(900)
        self._armed_delay_cycles += cycles
        return self._record(FaultType.DELAY, line, f"delay next response {cycles} cycles")

    # -- persistent faults ------------------------------------------------------

    def inject_counter_corruption(self, line: int) -> InjectedFault:
        """Overwrite the line's stored counter with a random value."""
        backing = self._backing
        line = backing.address_map.line_address(line)
        old = backing.read_seqnum(line)
        if old is None:
            raise ValueError(f"line {line:#x} has no stored counter to corrupt")
        new = self.rng.next_u64()
        backing.write_seqnum(line, new)
        self._undo.append(
            (f"counter {line:#x}", lambda: backing.write_seqnum(line, old))
        )
        return self._record(
            FaultType.COUNTER_CORRUPT, line, f"counter {old} -> {new}"
        )

    def inject_mac_tamper(self, line: int) -> InjectedFault:
        """Overwrite the line's MAC-tree leaf with random bytes."""
        tree = self._tree()
        index = tree.address_map.line_index(line)
        old = tree.nodes.get((0, index))
        tree.tamper_node(0, index, self.rng.next_bytes(32))

        def undo():
            if old is None:
                tree.nodes.pop((0, index), None)
            else:
                tree.nodes[(0, index)] = old

        self._undo.append((f"leaf {line:#x}", undo))
        return self._record(FaultType.MAC_TAMPER, line, f"leaf index {index}")

    def inject_tree_node_tamper(self, line: int, level: int = 1) -> InjectedFault:
        """Overwrite an interior tree node on the line's verification path."""
        tree = self._tree()
        if not 1 <= level <= tree.levels:
            raise ValueError(f"level must be in [1, {tree.levels}], got {level}")
        index = tree.address_map.line_index(line) >> (
            (tree.arity.bit_length() - 1) * level
        )
        old = tree.nodes.get((level, index))
        tree.tamper_node(level, index, self.rng.next_bytes(32))

        def undo():
            if old is None:
                tree.nodes.pop((level, index), None)
            else:
                tree.nodes[(level, index)] = old

        self._undo.append((f"node L{level}/{index}", undo))
        return self._record(
            FaultType.TREE_NODE_TAMPER, line, f"level {level} index {index}"
        )

    # -- replay -----------------------------------------------------------------

    def snapshot(self) -> None:
        """Record the complete untrusted state (the adversary's tape)."""
        tree = self.controller.integrity_tree
        self._snapshot = (
            dict(self._backing._data),
            dict(self._backing._seqnums),
            dict(tree.nodes) if tree is not None else {},
        )

    def inject_replay(self, line: int) -> InjectedFault:
        """Roll every untrusted byte back to the last :meth:`snapshot`.

        Ciphertexts, counters and tree nodes are restored *together*, so
        each line's triple is self-consistent — the rollback a flat MAC
        store cannot see and only the on-chip root catches.
        """
        if self._snapshot is None:
            raise ValueError("snapshot() must be taken before inject_replay()")
        tree = self.controller.integrity_tree
        current = (
            dict(self._backing._data),
            dict(self._backing._seqnums),
            dict(tree.nodes) if tree is not None else {},
        )
        data, seqnums, nodes = self._snapshot
        self._restore(data, seqnums, nodes)
        self._undo.append(("replay", lambda: self._restore(*current)))
        return self._record(
            FaultType.REPLAY, line, f"rolled back to snapshot ({len(data)} lines)"
        )

    def _restore(self, data: dict, seqnums: dict, nodes: dict) -> None:
        self._backing._data.clear()
        self._backing._data.update(data)
        self._backing._seqnums.clear()
        self._backing._seqnums.update(seqnums)
        tree = self.controller.integrity_tree
        if tree is not None:
            tree.nodes.clear()
            tree.nodes.update(nodes)

    # -- dispatch ---------------------------------------------------------------

    def inject(self, fault_type: FaultType, line: int) -> InjectedFault:
        """Apply one fault of ``fault_type`` targeted at ``line``."""
        dispatch = {
            FaultType.BIT_FLIP: self.inject_bit_flip,
            FaultType.COUNTER_CORRUPT: self.inject_counter_corruption,
            FaultType.MAC_TAMPER: self.inject_mac_tamper,
            FaultType.TREE_NODE_TAMPER: self.inject_tree_node_tamper,
            FaultType.REPLAY: self.inject_replay,
            FaultType.DROP: self.inject_drop,
            FaultType.DELAY: self.inject_delay,
        }
        return dispatch[fault_type](line)
