"""Simplified superscalar core timing model.

The paper runs SimpleScalar's out-of-order Alpha model; reproducing that at
cycle level in Python is infeasible for billions of instructions (see
DESIGN.md Section 2), so this module substitutes the standard trace-driven
abstraction:

* instructions between memory events retire at the issue width;
* L2 hits charge their access latency;
* L2 misses charge the *exposed* latency reported by the secure memory
  controller (fetch + decryption path), discounted by a memory-level-
  parallelism factor that stands in for the out-of-order window's ability
  to overlap independent work with an outstanding miss.

Because every scheme (baseline / sequence-number cache / OTP prediction /
oracle) is replayed through the identical model on the identical miss
stream, normalized IPC — the paper's metric — depends only on how well each
scheme hides decryption latency, which is exactly what is under study.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CoreConfig", "RunMetrics"]


@dataclass(frozen=True)
class CoreConfig:
    """Core parameters (Table 1: 8-wide fetch/issue/commit)."""

    issue_width: int = 8
    l2_hit_penalty: int = 4
    miss_overlap: float = 0.3

    def __post_init__(self) -> None:
        if self.issue_width <= 0:
            raise ValueError(f"issue_width must be positive, got {self.issue_width}")
        if self.l2_hit_penalty < 0:
            raise ValueError(
                f"l2_hit_penalty must be non-negative, got {self.l2_hit_penalty}"
            )
        if not 0.0 <= self.miss_overlap < 1.0:
            raise ValueError(
                f"miss_overlap must be in [0, 1), got {self.miss_overlap}"
            )


@dataclass
class RunMetrics:
    """Everything a figure needs from one (workload, scheme) run."""

    scheme: str
    cycles: float
    instructions: int
    l2_misses: int
    fetches: int
    writebacks: int
    prediction_lookups: int
    prediction_hits: int
    guesses_issued: int
    seqcache_lookups: int
    seqcache_hits: int
    class_both: int
    class_pred_only: int
    class_cache_only: int
    class_neither: int
    mean_exposed_latency: float
    engine_demand_blocks: int
    engine_speculative_blocks: int
    root_resets: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def prediction_rate(self) -> float:
        if not self.prediction_lookups:
            return 0.0
        return self.prediction_hits / self.prediction_lookups

    @property
    def seqcache_hit_rate(self) -> float:
        if not self.seqcache_lookups:
            return 0.0
        return self.seqcache_hits / self.seqcache_lookups

    def normalized_ipc(self, oracle: "RunMetrics") -> float:
        """IPC normalized to the oracle run (the paper's Figures 10-16)."""
        if not self.cycles:
            return 0.0
        return oracle.cycles / self.cycles
