"""Memory-access trace representation.

A *trace* is the interface between workloads and the simulator: an iterable
of :class:`MemoryAccess` records, each carrying the byte address, the access
kind, and the number of instructions the core executed since the previous
record (so the timing model can interleave computation with memory events
without simulating every instruction).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryAccess", "TraceSummary", "summarize_trace"]


@dataclass(frozen=True)
class MemoryAccess:
    """One memory reference emitted by a workload."""

    address: int
    is_write: bool = False
    is_instruction: bool = False
    gap_instructions: int = 8

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"address must be non-negative, got {self.address}")
        if self.gap_instructions < 0:
            raise ValueError(
                f"gap_instructions must be non-negative, got {self.gap_instructions}"
            )


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate shape of a trace (for tests and workload calibration)."""

    references: int
    instructions: int
    writes: int
    unique_lines: int
    unique_pages: int
    footprint_bytes: int

    @property
    def write_fraction(self) -> float:
        return self.writes / self.references if self.references else 0.0

    @property
    def references_per_kilo_instruction(self) -> float:
        if not self.instructions:
            return 0.0
        return 1000.0 * self.references / self.instructions


def summarize_trace(
    trace: list[MemoryAccess], line_bytes: int = 32, page_bytes: int = 4096
) -> TraceSummary:
    """Compute the aggregate statistics of ``trace``."""
    lines = set()
    pages = set()
    writes = 0
    instructions = 0
    for access in trace:
        lines.add(access.address // line_bytes)
        pages.add(access.address // page_bytes)
        writes += access.is_write
        instructions += access.gap_instructions
    return TraceSummary(
        references=len(trace),
        instructions=instructions,
        writes=writes,
        unique_lines=len(lines),
        unique_pages=len(pages),
        footprint_bytes=len(lines) * line_bytes,
    )
