"""Trace-driven CPU timing model and full-system simulator."""

from repro.cpu.core import CoreConfig, RunMetrics
from repro.cpu.engine import (
    BACKEND_ENV,
    DEFAULT_BACKEND,
    available_backends,
    register_backend,
    resolve_backend,
)
from repro.cpu.system import (
    FunctionalMismatchError,
    MissEvent,
    MissTrace,
    SecureSystem,
    collect_miss_trace,
    replay_miss_trace,
)
from repro.cpu.trace import MemoryAccess, TraceSummary, summarize_trace

__all__ = [
    "CoreConfig",
    "RunMetrics",
    "BACKEND_ENV",
    "DEFAULT_BACKEND",
    "available_backends",
    "register_backend",
    "resolve_backend",
    "FunctionalMismatchError",
    "MissEvent",
    "MissTrace",
    "SecureSystem",
    "collect_miss_trace",
    "replay_miss_trace",
    "MemoryAccess",
    "TraceSummary",
    "summarize_trace",
]
