"""Batched replay core: epoch-vectorized miss-trace simulation engine.

:func:`repro.cpu.system.replay_miss_trace` used to be *the* hot path of the
whole experiment engine: one Python-level method call chain per simulated
memory reference (controller -> DRAM -> bus -> crypto engine), repeated for
every scheme of every grid cell.  This module restructures that loop into
**batched array epochs** behind a small pluggable backend registry:

* ``reference`` — the original per-event loop, calling the live
  :class:`~repro.secure.controller.SecureMemoryController` state machine for
  every fetch and write-back.  Always available, always exact; the identity
  oracle everything else is checked against.
* ``batched`` — the default.  A :class:`MissTrace` is compiled **once** into
  struct-of-arrays form (gap-cycle columns; per-event groups of pre-derived
  line / page / DRAM bank / row coordinates; the *statically known* DRAM
  row-class latency of every access, since the bank-access sequence does
  not depend on timing; prefix sums of every statically determined counter
  — numpy does the bulk array work when importable), then replayed by a
  single tight loop over primitive locals that inlines the controller /
  DRAM / bus / crypto-engine / sequence-number-cache / PHV arithmetic
  exactly.  Statistics that depend on dynamic state accumulate in per-epoch
  delta counters; statistics that are pure functions of the trace position
  are recovered from the compile-time prefix sums — both are folded into
  the live stat objects at epoch boundaries through the ``absorb`` batch
  entry points on the stats dataclasses.
* ``numba`` — an optional hook for a JIT-compiled kernel.  It currently
  delegates to the batched core (the arithmetic is already branch-light and
  array-shaped, i.e. numba-ready) and degrades gracefully — with a one-time
  warning — when numba is not installed.

**Identity contract.**  For every supported controller the batched core is
*bit-identical* to the reference loop: same ``RunMetrics`` (including the
float ``cycles`` accumulator, reproduced operation-for-operation), same
controller / engine / predictor / DRAM / bus / seqcache statistics, same
RNG draw order on the page table, same sequence-number RAM contents.
Controllers the tight loop cannot express exactly — functional mode,
attached tracers, recovery-degraded state, fault-injector proxies, the
predecrypting/direct subclasses — are detected via
:meth:`~repro.secure.controller.SecureMemoryController.batched_replay_supported`
and routed to the reference loop, so ``batched`` is always safe to select.

Timing here is a sequential recurrence (each fetch's start depends on the
previous fetch's stall), so the *replay* cannot be cross-fetch vectorized
without changing results; the speedup comes from compiling the trace once,
hoisting every attribute lookup, method call and statically determined
branch out of the inner loop, and batching the bookkeeping.  See DESIGN.md
"Batched replay core".

Backend selection: ``replay_miss_trace(..., backend="batched")``, the
``repro --backend`` CLI flag, or the ``REPRO_REPLAY_BACKEND`` environment
variable (checked on every resolve, so workers inherit it).
"""

from __future__ import annotations

import os
import warnings
import weakref
from bisect import bisect_right
from itertools import chain, repeat
from operator import attrgetter

from repro.cpu.core import CoreConfig, RunMetrics
from repro.secure.controller import FetchClass, SecureMemoryController
from repro.secure.predictors import (
    NullPredictor,
    OtpPredictor,
    RegularOtpPredictor,
)
from repro.secure.seqnum import DISTANCE_WINDOW
from repro.telemetry.registry import DEFAULT_LATENCY_BOUNDS

try:  # numpy accelerates trace compilation; everything degrades without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

__all__ = [
    "BACKEND_ENV",
    "DEFAULT_BACKEND",
    "EPOCH_EVENTS",
    "CompiledTrace",
    "compile_trace",
    "ReplayBackend",
    "ReferenceBackend",
    "BatchedBackend",
    "NumbaBackend",
    "BACKENDS",
    "register_backend",
    "available_backends",
    "resolve_backend",
]

#: Environment variable consulted when no explicit backend is requested.
BACKEND_ENV = "REPRO_REPLAY_BACKEND"

#: Backend used when neither the caller nor the environment picks one.
DEFAULT_BACKEND = "batched"

#: Events per epoch: statistics deltas are flushed into the live stat
#: objects at least this often, bounding how stale the live counters can be
#: while the tight loop runs.
EPOCH_EVENTS = 4096

_MASK64 = (1 << 64) - 1

# Row access classes (indices into the per-geometry latency table).
_ROW_HIT, _ROW_EMPTY, _ROW_CONFLICT = 0, 1, 2

_EMPTY_GROUP: tuple = ()

# One C-level call extracting every compile-relevant MissEvent column.
_EVENT_COLUMNS = attrgetter(
    "gap_instructions", "gap_l2_hits", "fetch_addresses", "writeback_addresses"
)


# -- trace compilation ---------------------------------------------------------


class CompiledTrace:
    """Struct-of-arrays form of one :class:`MissTrace` for one geometry.

    Everything a replay derives per event from static configuration — and
    everything the DRAM model derives from the *order* of accesses alone —
    is hoisted to compile time:

    * ``steps`` — one flat 8-tuple per *fetch*:
      ``(gap_cycles, gap_hit_cycles, line, page, bank, row, latency,
      writeback_group)``.  ``gap_cycles`` is ``gap_instructions /
      issue_width`` (the exact float the reference loop computes) and
      ``gap_hit_cycles`` is ``gap_l2_hits * l2_hit_penalty``; both are 0
      on the second and later fetches of a multi-fetch event.  ``line`` /
      ``page`` / ``bank`` / ``row`` are the pre-derived address
      coordinates and ``latency`` the access's row-class latency — static
      because banks follow the open-page policy over a statically known
      access sequence.  The event's write-back group (a tuple of the same
      five coordinates per write-back) rides on its *last* fetch, so the
      replay needs no inner per-event loop; events with no fetches at all
      (periodic-flush write-back bursts) appear as one step with ``line``
      set to ``None``.
    * ``acc_banks`` / ``acc_rows`` — the combined per-access bank/row
      sequence (fetches then write-backs of each event, in trace order),
      used to reconstruct live open-row state if a replay ever has to leave
      the statically classified path (counter-overflow delegation).
    * ``cum_hits`` / ``cum_conflicts`` — prefix sums of the row classes
      over that sequence, so the replay recovers exact row-class counters
      for any access span without per-access counting (empties are the
      span length minus the other two).

    The bulk address arithmetic and row classification are numpy-vectorized
    when numpy is importable; all values are materialized as plain Python
    ints either way so the replay loop pays no numpy scalar-boxing cost.
    """

    __slots__ = ("n_steps", "steps", "acc_banks", "acc_rows",
                 "cum_hits", "cum_conflicts")

    def __init__(self, miss_trace, geometry) -> None:
        (line_bytes, page_shift, row_shift, bank_mask,
         lat_hit, lat_empty, lat_conflict, width, penalty) = geometry
        line_mask = ~(line_bytes - 1)
        bank_bits = bank_mask.bit_length()

        # Column extraction stays in C as much as possible: listcomps over
        # the event attributes, then itertools to flatten the combined
        # access sequence (each event's fetches, then its write-backs).
        trace_events = miss_trace.events
        n_events = len(trace_events)
        if n_events:
            gap_i, gap_l2, fetch_lists, wb_lists = zip(
                *map(_EVENT_COLUMNS, trace_events)
            )
        else:
            gap_i = gap_l2 = fetch_lists = wb_lists = ()
        if _np is not None and n_events:
            gap_f = (
                _np.fromiter(gap_i, _np.int64, n_events) / width
            ).tolist()
            gap_h = (
                _np.fromiter(gap_l2, _np.int64, n_events) * penalty
            ).tolist()
        else:
            gap_f = [gap / width for gap in gap_i]
            gap_h = [hits * penalty for hits in gap_l2]
        addresses = list(
            chain.from_iterable(
                chain.from_iterable(zip(fetch_lists, wb_lists))
            )
        )

        lines, pages, banks, rows, cols = _address_columns(
            addresses, line_mask, page_shift, row_shift, bank_mask, bank_bits
        )
        bank_col = row_col = None
        if cols is not None:
            _, _, bank_col, row_col = cols
        lats, classes, lat_col = _row_classes(
            banks, rows, bank_mask + 1, (lat_hit, lat_empty, lat_conflict),
            bank_col, row_col,
        )
        self.acc_banks = banks
        self.acc_rows = rows
        self.cum_hits, self.cum_conflicts = _class_prefix_sums(classes)

        # Flat per-fetch steps.  Traces are overwhelmingly one fetch per
        # event, which makes the step columns a position-select over the
        # combined access columns (event i's fetch sits at combined index
        # ``i + write-backs before event i``); anything else — multi-fetch
        # events, fetchless flush bursts, the no-numpy install — takes the
        # exact general loop below.
        n_wbs = list(map(len, wb_lists))
        total_wbs = sum(n_wbs)
        simple = (
            len(addresses) - total_wbs == n_events
            and (not n_events or min(map(len, fetch_lists)) == 1)
        )
        if simple and cols is not None:
            line_col, page_col, bank_col, row_col = cols
            if total_wbs:
                wb_arr = _np.fromiter(n_wbs, _np.int64, n_events)
                wb_before = _np.cumsum(wb_arr) - wb_arr
                fetch_pos = (
                    _np.arange(n_events, dtype=_np.int64) + wb_before
                )
                wb_groups = [_EMPTY_GROUP] * n_events
                for i in _np.nonzero(wb_arr)[0].tolist():
                    base = i + int(wb_before[i]) + 1
                    end = base + n_wbs[i]
                    wb_groups[i] = tuple(zip(
                        lines[base:end], pages[base:end], banks[base:end],
                        rows[base:end], lats[base:end],
                    ))
                self.steps = list(zip(
                    gap_f, gap_h,
                    line_col[fetch_pos].tolist(),
                    page_col[fetch_pos].tolist(),
                    bank_col[fetch_pos].tolist(),
                    row_col[fetch_pos].tolist(),
                    lat_col[fetch_pos].tolist(),
                    wb_groups,
                ))
            else:
                self.steps = list(zip(
                    gap_f, gap_h, lines, pages, banks, rows, lats,
                    repeat(_EMPTY_GROUP),
                ))
        else:
            flat = list(zip(lines, pages, banks, rows, lats))
            steps = []
            append = steps.append
            pos = 0
            for i in range(n_events):
                n_fetch = len(fetch_lists[i])
                n_wb = n_wbs[i]
                group = (
                    tuple(flat[pos + n_fetch:pos + n_fetch + n_wb])
                    if n_wb else _EMPTY_GROUP
                )
                if n_fetch:
                    gap = gap_f[i]
                    hit_gap = gap_h[i]
                    last = n_fetch - 1
                    for j in range(n_fetch):
                        line, page, bank, row, lat = flat[pos + j]
                        append((
                            gap, hit_gap, line, page, bank, row, lat,
                            group if j == last else _EMPTY_GROUP,
                        ))
                        gap = 0.0
                        hit_gap = 0
                else:
                    append((
                        gap_f[i], gap_h[i], None, None, None, None, None,
                        group,
                    ))
                pos += n_fetch + n_wb
            self.steps = steps
        self.n_steps = len(self.steps)


def _address_columns(
    addresses, line_mask, page_shift, row_shift, bank_mask, bank_bits
):
    """Line/page/bank/row columns for ``addresses`` as plain-int lists.

    Returns ``(lines, pages, banks, rows, cols)``; ``cols`` holds the four
    numpy column arrays when the vectorized path ran (so later compile
    stages can fancy-index instead of rebuilding them), else ``None``.
    """
    if _np is not None and addresses:
        try:
            column = _np.fromiter(
                addresses, dtype=_np.uint64, count=len(addresses)
            )
        except (OverflowError, ValueError):
            pass  # out-of-range address: fall through to exact Python ints
        else:
            line_col = column & _np.uint64(line_mask & _MASK64)
            row_full = line_col >> _np.uint64(row_shift)
            bank_col = row_full & _np.uint64(bank_mask)
            row_col = row_full >> _np.uint64(bank_bits)
            page_col = line_col >> _np.uint64(page_shift)
            return (
                line_col.tolist(),
                page_col.tolist(),
                bank_col.tolist(),
                row_col.tolist(),
                (line_col, page_col, bank_col, row_col),
            )
    lines = [address & line_mask for address in addresses]
    full = [line >> row_shift for line in lines]
    return (
        lines,
        [line >> page_shift for line in lines],
        [value & bank_mask for value in full],
        [value >> bank_bits for value in full],
        None,
    )


def _row_classes(banks, rows, num_banks, latencies, bank_col=None, row_col=None):
    """Open-page row classification of the static access sequence.

    Returns ``(lats, classes, lat_col)``: per-access latency (plain-int
    list), row class, and — on the vectorized path — the latency column as
    a numpy array (else ``None``); assuming all banks start with no open
    row (a replay starting from dirtier DRAM state skips the static path
    entirely).
    """
    n = len(banks)
    if _np is not None and n:
        if bank_col is None:
            bank_col = _np.fromiter(banks, dtype=_np.int64, count=n)
            row_col = _np.fromiter(rows, dtype=_np.uint64, count=n)
        order = _np.argsort(bank_col, kind="stable")
        same_bank = _np.zeros(n, dtype=bool)
        same_row = _np.zeros(n, dtype=bool)
        bank_sorted = bank_col[order]
        row_sorted = row_col[order]
        same_bank[1:] = bank_sorted[1:] == bank_sorted[:-1]
        same_row[1:] = row_sorted[1:] == row_sorted[:-1]
        cls_sorted = _np.where(
            same_bank,
            _np.where(same_row, _ROW_HIT, _ROW_CONFLICT),
            _ROW_EMPTY,
        )
        classes = _np.empty(n, dtype=_np.int64)
        classes[order] = cls_sorted
        lat_col = _np.asarray(latencies, dtype=_np.int64)[classes]
        return lat_col.tolist(), classes, lat_col
    open_rows: list = [None] * num_banks
    lats = []
    classes = []
    for bank, row in zip(banks, rows):
        open_row = open_rows[bank]
        if open_row == row:
            cls = _ROW_HIT
        elif open_row is None:
            cls = _ROW_EMPTY
        else:
            cls = _ROW_CONFLICT
        open_rows[bank] = row
        classes.append(cls)
        lats.append(latencies[cls])
    return lats, classes, None


def _class_prefix_sums(classes):
    """``(cum_hits, cum_conflicts)`` prefix-sum lists (length n+1).

    Empties need no array of their own: over any access span they are the
    span length minus its hits and conflicts.
    """
    n = len(classes)
    if _np is not None and n:
        cls = _np.asarray(classes, dtype=_np.int64)
        out = []
        for code in (_ROW_HIT, _ROW_CONFLICT):
            cum = _np.zeros(n + 1, dtype=_np.int64)
            _np.cumsum(cls == code, out=cum[1:])
            out.append(cum.tolist())
        return tuple(out)
    hits = [0]
    conflicts = [0]
    for cls in classes:
        hits.append(hits[-1] + (cls == _ROW_HIT))
        conflicts.append(conflicts[-1] + (cls == _ROW_CONFLICT))
    return hits, conflicts


# Compiled traces memoized per live MissTrace instance.  Keyed by id() with
# a weakref reaper (rather than a WeakKeyDictionary) because hashing a
# frozen MissTrace walks its whole events tuple — O(trace) per lookup.
_COMPILED: dict[int, tuple[weakref.ref, dict]] = {}


def compile_trace(
    miss_trace,
    address_map,
    dram_config=None,
    core: CoreConfig | None = None,
) -> CompiledTrace:
    """Compile (memoized) ``miss_trace`` for one machine geometry.

    The cache is two-level: per trace instance, then per geometry tuple
    (address map + DRAM bank/timing layout + core gap parameters), so one
    trace replayed through machines with different geometries compiles once
    per geometry — and every scheme of a grid shares the one compile.
    """
    if dram_config is None:
        from repro.memory.dram import DramConfig

        dram_config = DramConfig()
    core = core or CoreConfig()
    per_beat = dram_config.bus.cycles_per_beat
    geometry = (
        address_map.line_bytes,
        address_map.page_shift,
        dram_config.row_bytes.bit_length() - 1,
        dram_config.num_banks - 1,
        dram_config.t_cas * per_beat,
        (dram_config.t_rcd + dram_config.t_cas) * per_beat,
        (dram_config.t_rp + dram_config.t_rcd + dram_config.t_cas) * per_beat,
        float(core.issue_width),
        core.l2_hit_penalty,
    )
    key = id(miss_trace)
    entry = _COMPILED.get(key)
    if entry is None or entry[0]() is not miss_trace:
        ref = weakref.ref(
            miss_trace, lambda _ref, _key=key: _COMPILED.pop(_key, None)
        )
        entry = (ref, {})
        _COMPILED[key] = entry
    compiled = entry[1].get(geometry)
    if compiled is None:
        compiled = CompiledTrace(miss_trace, geometry)
        entry[1][geometry] = compiled
    return compiled


# -- shared epilogue -----------------------------------------------------------


def _finalize_metrics(
    miss_trace, controller, scheme: str, cycle: float
) -> RunMetrics:
    """Assemble :class:`RunMetrics` from a finished replay's live stats."""
    stats = controller.stats
    predictor_stats = controller.predictor.stats
    return RunMetrics(
        scheme=scheme,
        cycles=cycle,
        instructions=miss_trace.total_instructions,
        l2_misses=miss_trace.l2_misses,
        fetches=stats.fetches,
        writebacks=stats.writebacks,
        prediction_lookups=predictor_stats.lookups,
        prediction_hits=predictor_stats.hits,
        guesses_issued=predictor_stats.guesses_issued,
        seqcache_lookups=(
            controller.seqcache.demand_lookups if controller.seqcache else 0
        ),
        seqcache_hits=(
            controller.seqcache.demand_hits if controller.seqcache else 0
        ),
        class_both=stats.class_counts[FetchClass.BOTH],
        class_pred_only=stats.class_counts[FetchClass.PRED_ONLY],
        class_cache_only=stats.class_counts[FetchClass.CACHE_ONLY],
        class_neither=stats.class_counts[FetchClass.NEITHER],
        mean_exposed_latency=stats.mean_exposed_latency,
        engine_demand_blocks=controller.engine.stats.demand_blocks,
        engine_speculative_blocks=controller.engine.stats.speculative_blocks,
        root_resets=controller.page_table.total_resets,
    )


# -- reference core ------------------------------------------------------------


def _replay_reference(
    miss_trace,
    controller,
    core: CoreConfig | None = None,
    scheme: str = "unnamed",
    on_fetch=None,
    hook_interval: int = 0,
) -> RunMetrics:
    """The original per-event loop over the live controller state machine.

    ``hook_interval`` is accepted for signature parity but ignored: the
    reference loop keeps its historical per-fetch ``on_fetch`` calls (the
    runner's modulo filter makes the observable series identical).
    """
    core = core or CoreConfig()
    cycle = 0.0
    width = float(core.issue_width)
    hidden = 1.0 - core.miss_overlap
    fetches = 0

    for event in miss_trace.events:
        cycle += event.gap_instructions / width
        cycle += event.gap_l2_hits * core.l2_hit_penalty
        for address in event.fetch_addresses:
            result = controller.fetch_line(int(cycle), address)
            stall = (result.data_ready - cycle) * hidden
            if stall > 0:
                cycle += stall
            if on_fetch is not None:
                fetches += 1
                on_fetch(fetches)
        for address in event.writeback_addresses:
            controller.writeback_line(int(cycle), address)

    # Drain trailing computation so IPC reflects the whole trace.
    cycle += 1.0  # avoid zero-cycle degenerate traces

    return _finalize_metrics(miss_trace, controller, scheme, cycle)


# -- batched core --------------------------------------------------------------


def _flush_stats(
    ctx, fetches, df, dw, acc_idx, a_base, engine_issued,
    port_free, bus_free, sc_clock,
    d_row_hits, d_row_empties, d_row_conflicts, d_bank_queue, d_bus_queue,
    d_demand, d_spec, d_e_queue, d_rebased, d_covered,
    d_both, d_pred_only, d_cache_only, d_neither,
    d_exposed, d_overhead, d_hist, d_hits, d_resets,
    d_sc_dhit, d_sc_uhit, d_sc_evict, d_sc_dirty,
):
    """Fold one flush window's deltas and static spans into the live stats.

    Module-level on purpose: were this a closure inside the replay loop,
    every counter it touches would become a closure cell and every hot-loop
    access a slow dereference.  The replay hands the whole window in as
    arguments and re-zeroes its locals at the call site.  Idempotent for an
    empty window, so the replay's ``finally`` flush is always safe.
    """
    (controller, seqcache, sc_tags, cum_hits, cum_conflicts,
     fetch_bytes, dur_fetch, dur_wb, interval, blocks, reg_n,
     oracle, regular_fast, sc_inline, neither_static) = ctx
    dram = controller.dram
    bus = dram.bus
    engine = controller.engine
    span_hits = cum_hits[acc_idx] - cum_hits[a_base]
    span_conflicts = cum_conflicts[acc_idx] - cum_conflicts[a_base]
    dram.stats.absorb(
        reads=df,
        writes=dw,
        row_hits=span_hits + d_row_hits,
        row_empties=(
            acc_idx - a_base - span_hits - span_conflicts + d_row_empties
        ),
        row_conflicts=span_conflicts + d_row_conflicts,
        bank_queue_cycles=d_bank_queue,
    )
    bus.stats.absorb(
        transfers=2 * df + dw,
        bytes_moved=fetch_bytes * (df + dw),
        busy_cycles=dur_fetch * df + dur_wb * dw,
        queue_delay_cycles=d_bus_queue,
    )
    # Demand blocks: dynamic issues, plus one batch per write-back, plus
    # one batch per fetch under the oracle.  The closed-form regular
    # predictor speculates on exactly the fetches that missed the seqnum
    # cache (all of them, without one), reg_n blocks each.  Engine busy
    # time is exactly issue_interval per issued block.
    demand = d_demand + blocks * dw
    if oracle:
        demand += blocks * df
    spec = d_spec
    if regular_fast:
        spec += reg_n * blocks * ((df - d_sc_dhit) if sc_inline else df)
    engine.stats.absorb(
        demand_blocks=demand,
        speculative_blocks=spec,
        queue_delay_cycles=d_e_queue,
        busy_cycles=(demand + spec) * interval,
        last_issue_time=port_free if engine_issued else None,
    )
    # The closed-form regular predictor does one lookup of reg_n guesses
    # per fetch; other predictors update their stats live.
    if regular_fast:
        controller.predictor.stats.absorb(
            lookups=df,
            hits=d_hits,
            guesses_issued=reg_n * df,
            root_resets=d_resets,
        )
    controller.stats.absorb(
        fetches=df,
        writebacks=dw,
        rebased_writebacks=d_rebased,
        covered_fetches=d_covered,
        class_both=d_both,
        class_pred_only=d_pred_only,
        class_cache_only=d_cache_only,
        # Without a seqcache the oracle classifies every fetch NEITHER.
        class_neither=df if neither_static else d_neither,
        exposed_latency=d_exposed,
        decryption_overhead=d_overhead,
        exposed_latency_counts=d_hist,
    )
    if sc_inline:
        # One access per fetch (lookup) and per write-back (update);
        # misses are the accesses that didn't hit.
        sc_hits = d_sc_dhit + d_sc_uhit
        sc_tags.stats.absorb(
            accesses=df + dw,
            hits=sc_hits,
            misses=df + dw - sc_hits,
            evictions=d_sc_evict,
            dirty_evictions=d_sc_dirty,
            writes=dw,
        )
        seqcache.absorb(demand_lookups=df, demand_hits=d_sc_dhit)
        sc_tags._clock = sc_clock
    bus._free_at = bus_free
    engine._port_free_at = port_free
    if fetches:
        # Reference semantics: every clean fetch zeroes the fault run.
        controller._consecutive_faults = 0


def _replay_batched(
    compiled: CompiledTrace,
    miss_trace,
    controller: SecureMemoryController,
    core: CoreConfig,
    scheme: str,
    on_fetch,
    hook_interval: int,
) -> RunMetrics:
    """Tight-loop replay of a compiled trace; bit-identical to the reference.

    Every arithmetic step below reproduces, in the same order and on the
    same integer/float types, what the controller / DRAM / bus / engine /
    seqcache / predictor methods compute per reference — the per-path
    comments cite the method being inlined.  Dynamic statistics accumulate
    in local delta counters; statically determined statistics (access and
    row-class counts, bus bytes, demand-issue rates, lookup counts) are
    recovered from the compiled prefix sums.  Both are folded into the live
    stat objects by ``flush`` (per epoch, before every ``on_fetch`` call,
    and — via ``finally`` — on any exit, so a raising replay leaves the
    controller exactly as the reference loop would).
    """
    cycle = 0.0
    hidden = 1.0 - core.miss_overlap

    n_steps = compiled.n_steps
    steps = compiled.steps

    stats = controller.stats
    engine = controller.engine
    dram = controller.dram
    bus = dram.bus
    backing = controller.backing
    table = controller.page_table
    predictor = controller.predictor
    seqcache = controller.seqcache
    oracle = controller.oracle
    blocks = controller.blocks
    max_guesses = controller.max_guesses

    # Model constants, hoisted once (Dram._access_bank / fetch_line_with_seqnum,
    # MemoryBus.transfer, CryptoEngine.issue).
    dram_config = dram.config
    ctrl_cycles = dram_config.controller_cycles
    per_beat = dram_config.bus.cycles_per_beat
    lat_hit = dram_config.t_cas * per_beat
    lat_empty = (dram_config.t_rcd + dram_config.t_cas) * per_beat
    lat_conflict = (
        dram_config.t_rp + dram_config.t_rcd + dram_config.t_cas
    ) * per_beat
    line_bytes = controller.address_map.line_bytes
    map_line_shift = controller.address_map.line_shift
    bus_config = bus.config
    dur_seq = bus_config.transfer_cycles(8)
    dur_line = bus_config.transfer_cycles(line_bytes)
    dur_fetch = dur_seq + dur_line
    fetch_bytes = 8 + line_bytes
    dur_wb = bus_config.transfer_cycles(line_bytes + 8)
    interval = engine.config.issue_interval
    e_latency = engine.config.latency_cycles
    blocks_cost = blocks * interval
    pad_tail = (blocks - 1) * interval + e_latency  # last block of a demand batch

    # Live mutable state: lists/dicts are mutated in place (no flush needed);
    # scalars are mirrored in locals and written back by flush.
    bank_free = dram._bank_free_at
    open_rows = dram._open_rows
    seqnums = backing._seqnums
    seqnums_get = seqnums.get
    bus_free = bus._free_at
    port_free = engine._port_free_at
    table_state = table.state
    pages_get = table._pages.get
    reset_root = table.reset_root
    phv_bits = table.phv_bits
    phv_mask = (1 << phv_bits) - 1
    phv_threshold = table.phv_threshold

    # Static DRAM path: the compiled row classification assumed every bank
    # starts closed.  A replay over dirtier DRAM state (or one that had to
    # delegate a counter overflow to the live controller) classifies rows
    # dynamically instead — same arithmetic, per-access counters.
    dram_static = all(open_row is None for open_row in open_rows)
    cum_hits = compiled.cum_hits
    cum_conflicts = compiled.cum_conflicts

    # Sequence-number cache, inlined (SequenceNumberCache.lookup/fill/update
    # over Cache.access).  A demand lookup's miss *allocates* the counter
    # line, so the subsequent fill in fetch_line is always a residency-probe
    # no-op — the inline path therefore has nothing to do for fill.
    sc_inline = seqcache is not None
    sc_tags = sc_sets = sc_set_mask = sc_shift = sc_assoc = None
    sc_clock = 0
    if sc_inline:
        sc_tags = seqcache._tags
        sc_sets = sc_tags._sets
        sc_set_mask = sc_tags._set_mask
        sc_shift = sc_tags._line_shift
        sc_assoc = sc_tags.config.associativity
        sc_clock = sc_tags._clock

    # Predictor strategy.  The regular predictor without root history — the
    # paper's headline scheme — has a closed form: its guess list is always
    # [root .. root+depth] (masked, distinct), so membership and hit index
    # reduce to one modular distance with no list ever built, and its PHV
    # training is three integer operations on the page state.  Every other
    # predictor goes through its real predict/record/observe methods (the
    # surrounding DRAM/engine arithmetic stays inlined either way).
    speculate = not oracle and not isinstance(predictor, NullPredictor)
    regular_fast = (
        speculate
        and type(predictor) is RegularOtpPredictor
        and not predictor.use_root_history
    )
    reg_n = 0
    spec_cost = 0
    adaptive = False
    if regular_fast:
        reg_n = min(predictor.depth + 1, max_guesses)
        spec_cost = reg_n * blocks * interval
        adaptive = predictor.adaptive
    predict = predictor.predict
    record = predictor.record
    # Base-class observers are documented no-ops; skip the call entirely.
    observe_fetch = (
        None
        if type(predictor).observe_fetch is OtpPredictor.observe_fetch
        else predictor.observe_fetch
    )
    observe_writeback = (
        None
        if type(predictor).observe_writeback is OtpPredictor.observe_writeback
        else predictor.observe_writeback
    )

    # With neither seqcache hits nor predictions possible, every fetch is
    # classified NEITHER — recovered statically at flush.
    neither_static = oracle and not sc_inline

    bounds = DEFAULT_LATENCY_BOUNDS
    _bisect = bisect_right
    mask64 = _MASK64
    distance_window = DISTANCE_WINDOW
    # Pages already mapped before this replay (preseeding maps the whole
    # footprint); lets the oracle path skip the page-table probe.
    seen_pages = set(table._pages)

    # Dynamic delta counters.  These stay plain locals (no closure cells):
    # the flush sites below hand them to the module-level _flush_stats and
    # re-zero them inline, keeping every hot-loop access a fast local.
    hist_n = len(bounds) + 1
    d_row_hits = d_row_empties = d_row_conflicts = 0
    d_bank_queue = d_bus_queue = 0
    d_demand = d_spec = d_e_queue = 0
    d_rebased = d_covered = 0
    d_both = d_pred_only = d_cache_only = d_neither = 0
    d_exposed = d_overhead = 0
    d_hist = [0] * hist_n
    d_hits = d_resets = 0
    d_sc_dhit = d_sc_uhit = d_sc_evict = d_sc_dirty = 0
    engine_issued = False
    fetches = 0
    wbs = 0
    # Flush baselines for the statically determined counters.  acc_idx is
    # the combined access index of the compiled sequence; while the static
    # DRAM path holds it is simply fetches + wbs, so it is only
    # materialized at flush points.
    f_base = 0
    w_base = 0
    a_base = 0
    acc_idx = 0

    hook_step = hook_interval if hook_interval > 0 else 1
    next_hook = hook_step if on_fetch is not None else -1

    flush_ctx = (
        controller, seqcache, sc_tags, cum_hits, cum_conflicts,
        fetch_bytes, dur_fetch, dur_wb, interval, blocks, reg_n,
        oracle, regular_fast, sc_inline, neither_static,
    )

    try:
        for epoch_start in range(0, n_steps, EPOCH_EVENTS):
            for (gap_f, gap_h, line, page, bank, row, lat,
                 writeback_group) in steps[
                epoch_start:epoch_start + EPOCH_EVENTS
            ]:
                cycle += gap_f
                cycle += gap_h

                if line is not None:
                    now = int(cycle)

                    # Dram.fetch_line_with_seqnum: bank access, then the
                    # pipelined seqnum + line transfers on the shared bus.
                    issue = now + ctrl_cycles
                    b_free = bank_free[bank]
                    start = issue if issue >= b_free else b_free
                    d_bank_queue += start - issue
                    if dram_static:
                        data_start = start + lat
                    else:
                        open_row = open_rows[bank]
                        if open_row == row:
                            d_row_hits += 1
                            data_start = start + lat_hit
                        elif open_row is None:
                            d_row_empties += 1
                            data_start = start + lat_empty
                        else:
                            d_row_conflicts += 1
                            data_start = start + lat_conflict
                        open_rows[bank] = row
                    bank_free[bank] = data_start
                    s1 = data_start if data_start >= bus_free else bus_free
                    d_bus_queue += s1 - data_start
                    seqnum_ready = s1 + dur_seq
                    # The line transfer starts exactly when the seqnum beat
                    # frees the bus, so its queue delay is structurally 0.
                    line_ready = seqnum_ready + dur_line
                    bus_free = line_ready

                    stored = seqnums_get(line)

                    if regular_fast:
                        # SecureMemoryController.current_seqnum: stored
                        # counter, or the page's mapping-time root; the
                        # regular predictor touches the page state (mapping
                        # it — one RNG draw — on first touch) every fetch.
                        state = pages_get(page)
                        if state is None:
                            state = table_state(page)
                        actual = (
                            stored if stored is not None else state.mapping_root
                        )
                        # SequenceNumberCache.lookup (Cache.access on the
                        # counter-array address); the later fill is a no-op
                        # because this access already allocated on miss.
                        if sc_inline:
                            seq_tag = (
                                (line >> map_line_shift) << 3
                            ) >> sc_shift
                            sc_clock += 1
                            sset = sc_sets[seq_tag & sc_set_mask]
                            entry = sset.get(seq_tag)
                            if entry is not None:
                                entry[0] = sc_clock
                                d_sc_dhit += 1
                                cache_hit = True
                            else:
                                if len(sset) >= sc_assoc:
                                    # LRU victim: stamps are unique clock
                                    # values, all below the current clock.
                                    vtag = 0
                                    vstamp = sc_clock
                                    for tag, way in sset.items():
                                        stamp = way[0]
                                        if stamp < vstamp:
                                            vstamp = stamp
                                            vtag = tag
                                            ventry = way
                                    del sset[vtag]
                                    d_sc_evict += 1
                                    if ventry[1]:
                                        d_sc_dirty += 1
                                sset[seq_tag] = [sc_clock, False]
                                cache_hit = False
                        else:
                            cache_hit = False

                        # Closed-form regular prediction: the guess list is
                        # always [root .. root+depth] (masked, distinct), so
                        # membership is one modular distance.  The lookup is
                        # recorded even on a cache hit, like the reference.
                        dist = (actual - state.root) & mask64
                        predicted = dist < reg_n
                        if predicted:
                            d_hits += 1

                        # _schedule_pads + classification: a cache hit wins
                        # with a demand issue; otherwise speculate, falling
                        # through to a demand issue gated on the seqnum's
                        # arrival when the guess window missed.
                        if cache_hit:
                            e_start = now if now >= port_free else port_free
                            d_e_queue += e_start - now
                            port_free = e_start + blocks_cost
                            d_demand += blocks
                            pad_ready = e_start + pad_tail
                            if predicted:
                                d_both += 1
                            else:
                                d_cache_only += 1
                        else:
                            e_start = now if now >= port_free else port_free
                            d_e_queue += e_start - now
                            port_free = e_start + spec_cost
                            if predicted:
                                pad_ready = (
                                    e_start
                                    + (blocks * (dist + 1) - 1) * interval
                                    + e_latency
                                )
                                d_pred_only += 1
                            else:
                                e_start = (
                                    seqnum_ready
                                    if seqnum_ready >= port_free
                                    else port_free
                                )
                                d_e_queue += e_start - seqnum_ready
                                port_free = e_start + blocks_cost
                                d_demand += blocks
                                pad_ready = e_start + pad_tail
                                d_neither += 1

                        # Inlined RegularOtpPredictor.observe_fetch →
                        # PageSecurityTable.record_prediction: PHV shift,
                        # saturating fill, popcount-vs-threshold root reset.
                        if adaptive:
                            phv = (
                                (state.phv << 1) | (not predicted)
                            ) & phv_mask
                            state.phv = phv
                            fill = state.phv_fill + 1
                            if fill >= phv_bits:
                                state.phv_fill = phv_bits
                                if phv.bit_count() >= phv_threshold:
                                    reset_root(page)
                                    d_resets += 1
                            else:
                                state.phv_fill = fill
                    elif oracle:
                        # current_seqnum touches the page state only when no
                        # counter is stored; no prediction, no training —
                        # the pad batch issues on demand at fetch time.
                        if stored is None and page not in seen_pages:
                            seen_pages.add(page)
                            if pages_get(page) is None:
                                table_state(page)
                        if sc_inline:
                            seq_tag = (
                                (line >> map_line_shift) << 3
                            ) >> sc_shift
                            sc_clock += 1
                            sset = sc_sets[seq_tag & sc_set_mask]
                            entry = sset.get(seq_tag)
                            if entry is not None:
                                entry[0] = sc_clock
                                d_sc_dhit += 1
                                d_cache_only += 1
                            else:
                                if len(sset) >= sc_assoc:
                                    vtag = 0
                                    vstamp = sc_clock
                                    for tag, way in sset.items():
                                        stamp = way[0]
                                        if stamp < vstamp:
                                            vstamp = stamp
                                            vtag = tag
                                            ventry = way
                                    del sset[vtag]
                                    d_sc_evict += 1
                                    if ventry[1]:
                                        d_sc_dirty += 1
                                sset[seq_tag] = [sc_clock, False]
                                d_neither += 1
                        e_start = now if now >= port_free else port_free
                        d_e_queue += e_start - now
                        port_free = e_start + blocks_cost
                        pad_ready = e_start + pad_tail
                    else:
                        # Generic path: live predictor methods around the
                        # inlined timing arithmetic.
                        if stored is None:
                            state = pages_get(page)
                            if state is None:
                                state = table_state(page)
                            actual = state.mapping_root
                        else:
                            actual = stored

                        if sc_inline:
                            seq_tag = (
                                (line >> map_line_shift) << 3
                            ) >> sc_shift
                            sc_clock += 1
                            sset = sc_sets[seq_tag & sc_set_mask]
                            entry = sset.get(seq_tag)
                            if entry is not None:
                                entry[0] = sc_clock
                                d_sc_dhit += 1
                                cache_hit = True
                            else:
                                if len(sset) >= sc_assoc:
                                    vtag = 0
                                    vstamp = sc_clock
                                    for tag, way in sset.items():
                                        stamp = way[0]
                                        if stamp < vstamp:
                                            vstamp = stamp
                                            vtag = tag
                                            ventry = way
                                    del sset[vtag]
                                    d_sc_evict += 1
                                    if ventry[1]:
                                        d_sc_dirty += 1
                                sset[seq_tag] = [sc_clock, False]
                                cache_hit = False
                        else:
                            cache_hit = False

                        predicted = False
                        hit_index = 0
                        n_guesses = 0
                        if speculate:
                            guesses = predict(page, line)[:max_guesses]
                            predicted = record(guesses, actual)
                            n_guesses = len(guesses)
                            if predicted:
                                hit_index = guesses.index(actual)

                        # _schedule_pads: cache-hit demand issue wins over
                        # speculation; a speculative miss falls through to a
                        # demand issue gated on the seqnum's arrival.
                        if cache_hit:
                            e_start = now if now >= port_free else port_free
                            d_e_queue += e_start - now
                            port_free = e_start + blocks_cost
                            d_demand += blocks
                            pad_ready = e_start + pad_tail
                        elif n_guesses:
                            count = n_guesses * blocks
                            e_start = now if now >= port_free else port_free
                            d_e_queue += e_start - now
                            port_free = e_start + count * interval
                            d_spec += count
                            if predicted:
                                pad_ready = (
                                    e_start
                                    + (blocks * (hit_index + 1) - 1) * interval
                                    + e_latency
                                )
                            else:
                                e_start = (
                                    seqnum_ready
                                    if seqnum_ready >= port_free
                                    else port_free
                                )
                                d_e_queue += e_start - seqnum_ready
                                port_free = e_start + blocks_cost
                                d_demand += blocks
                                pad_ready = e_start + pad_tail
                        else:
                            e_start = (
                                seqnum_ready
                                if seqnum_ready >= port_free
                                else port_free
                            )
                            d_e_queue += e_start - seqnum_ready
                            port_free = e_start + blocks_cost
                            d_demand += blocks
                            pad_ready = e_start + pad_tail

                        if observe_fetch is not None:
                            observe_fetch(page, line, actual, predicted)

                        if cache_hit:
                            if predicted:
                                d_both += 1
                            else:
                                d_cache_only += 1
                        elif predicted:
                            d_pred_only += 1
                        else:
                            d_neither += 1

                    # line_ready > seqnum_ready always, so the reference's
                    # three-way max reduces to two.
                    data_ready = (
                        line_ready if line_ready >= pad_ready else pad_ready
                    )
                    if pad_ready < seqnum_ready + e_latency:
                        d_covered += 1
                    exposed = data_ready - now
                    d_exposed += exposed
                    d_overhead += data_ready - line_ready
                    d_hist[_bisect(bounds, exposed)] += 1

                    # replay loop: stall the core, then the batched hook.
                    stall = (data_ready - cycle) * hidden
                    if stall > 0:
                        cycle += stall
                    fetches += 1
                    if fetches == next_hook:
                        if fetches != f_base or wbs != w_base:
                            engine_issued = True
                        if dram_static:
                            acc_idx = fetches + wbs
                        _flush_stats(
                            flush_ctx, fetches, fetches - f_base, wbs - w_base, acc_idx,
                            a_base, engine_issued, port_free, bus_free, sc_clock,
                            d_row_hits, d_row_empties, d_row_conflicts, d_bank_queue,
                            d_bus_queue, d_demand, d_spec, d_e_queue, d_rebased, d_covered,
                            d_both, d_pred_only, d_cache_only, d_neither, d_exposed,
                            d_overhead, d_hist, d_hits, d_resets, d_sc_dhit, d_sc_uhit,
                            d_sc_evict, d_sc_dirty,
                        )
                        f_base = fetches
                        w_base = wbs
                        a_base = acc_idx
                        d_row_hits = d_row_empties = d_row_conflicts = 0
                        d_bank_queue = d_bus_queue = 0
                        d_demand = d_spec = d_e_queue = 0
                        d_rebased = d_covered = 0
                        d_both = d_pred_only = d_cache_only = d_neither = 0
                        d_exposed = d_overhead = 0
                        d_hits = d_resets = 0
                        d_sc_dhit = d_sc_uhit = d_sc_evict = d_sc_dirty = 0
                        d_hist = [0] * hist_n
                        on_fetch(fetches)
                        next_hook += hook_step

                if writeback_group:
                    wb_now = int(cycle)  # constant across an event's write-backs
                    for line, page, bank, row, lat in writeback_group:
                        # writeback_line: distance test, then increment or
                        # rebase (Section 3.2).
                        state = pages_get(page)
                        if state is None:
                            state = table_state(page)
                        stored = seqnums_get(line)
                        old = state.mapping_root if stored is None else stored
                        if (old - state.root) & mask64 < distance_window:
                            if old == mask64:
                                # Saturated counter — the real write-back
                                # path owns the overflow policy (raise, or
                                # re-encrypt the page under a fresh root).
                                if fetches != f_base or wbs != w_base:
                                    engine_issued = True
                                if dram_static:
                                    acc_idx = fetches + wbs
                                _flush_stats(
                                    flush_ctx, fetches, fetches - f_base, wbs - w_base, acc_idx,
                                    a_base, engine_issued, port_free, bus_free, sc_clock,
                                    d_row_hits, d_row_empties, d_row_conflicts, d_bank_queue,
                                    d_bus_queue, d_demand, d_spec, d_e_queue, d_rebased, d_covered,
                                    d_both, d_pred_only, d_cache_only, d_neither, d_exposed,
                                    d_overhead, d_hist, d_hits, d_resets, d_sc_dhit, d_sc_uhit,
                                    d_sc_evict, d_sc_dirty,
                                )
                                f_base = fetches
                                w_base = wbs
                                a_base = acc_idx
                                d_row_hits = d_row_empties = d_row_conflicts = 0
                                d_bank_queue = d_bus_queue = 0
                                d_demand = d_spec = d_e_queue = 0
                                d_rebased = d_covered = 0
                                d_both = d_pred_only = d_cache_only = d_neither = 0
                                d_exposed = d_overhead = 0
                                d_hits = d_resets = 0
                                d_sc_dhit = d_sc_uhit = d_sc_evict = d_sc_dirty = 0
                                d_hist = [0] * hist_n
                                if dram_static:
                                    # Leaving the statically classified DRAM path:
                                    # reconstruct live open-row state from the access
                                    # prefix, then classify dynamically from here on.
                                    dram_static = False
                                    acc_banks = compiled.acc_banks
                                    acc_rows = compiled.acc_rows
                                    pending = set(range(len(open_rows)))
                                    for j in range(acc_idx - 1, -1, -1):
                                        b = acc_banks[j]
                                        if b in pending:
                                            open_rows[b] = acc_rows[j]
                                            pending.discard(b)
                                            if not pending:
                                                break
                                controller.writeback_line(wb_now, line)
                                bus_free = bus._free_at
                                port_free = engine._port_free_at
                                if sc_inline:
                                    sc_clock = sc_tags._clock
                                continue
                            new_seqnum = old + 1
                            rebased = False
                        else:
                            new_seqnum = state.root
                            rebased = True
                        seqnums[line] = new_seqnum

                        # SequenceNumberCache.update (write access).
                        if sc_inline:
                            seq_tag = (
                                (line >> map_line_shift) << 3
                            ) >> sc_shift
                            sc_clock += 1
                            sset = sc_sets[seq_tag & sc_set_mask]
                            entry = sset.get(seq_tag)
                            if entry is not None:
                                d_sc_uhit += 1
                                entry[0] = sc_clock
                                entry[1] = True
                            else:
                                if len(sset) >= sc_assoc:
                                    vtag = 0
                                    vstamp = sc_clock
                                    for tag, way in sset.items():
                                        stamp = way[0]
                                        if stamp < vstamp:
                                            vstamp = stamp
                                            vtag = tag
                                            ventry = way
                                    del sset[vtag]
                                    d_sc_evict += 1
                                    if ventry[1]:
                                        d_sc_dirty += 1
                                sset[seq_tag] = [sc_clock, True]

                        if observe_writeback is not None:
                            observe_writeback(page, line, new_seqnum)

                        # Demand pad for the fresh encryption, then the
                        # posted line+counter write (engine.issue, dram.write).
                        # Block counts and transfer totals are static.
                        e_start = wb_now if wb_now >= port_free else port_free
                        d_e_queue += e_start - wb_now
                        port_free = e_start + blocks_cost
                        pad_done = e_start + pad_tail
                        issue = pad_done + ctrl_cycles
                        b_free = bank_free[bank]
                        start = issue if issue >= b_free else b_free
                        d_bank_queue += start - issue
                        if dram_static:
                            data_start = start + lat
                        else:
                            open_row = open_rows[bank]
                            if open_row == row:
                                d_row_hits += 1
                                data_start = start + lat_hit
                            elif open_row is None:
                                d_row_empties += 1
                                data_start = start + lat_empty
                            else:
                                d_row_conflicts += 1
                                data_start = start + lat_conflict
                            open_rows[bank] = row
                        bank_free[bank] = data_start
                        s1 = data_start if data_start >= bus_free else bus_free
                        d_bus_queue += s1 - data_start
                        bus_free = s1 + dur_wb
                        wbs += 1
                        if rebased:
                            d_rebased += 1
            # Epoch boundary: live stats catch up.
            if fetches != f_base or wbs != w_base:
                engine_issued = True
            if dram_static:
                acc_idx = fetches + wbs
            _flush_stats(
                flush_ctx, fetches, fetches - f_base, wbs - w_base, acc_idx,
                a_base, engine_issued, port_free, bus_free, sc_clock,
                d_row_hits, d_row_empties, d_row_conflicts, d_bank_queue,
                d_bus_queue, d_demand, d_spec, d_e_queue, d_rebased, d_covered,
                d_both, d_pred_only, d_cache_only, d_neither, d_exposed,
                d_overhead, d_hist, d_hits, d_resets, d_sc_dhit, d_sc_uhit,
                d_sc_evict, d_sc_dirty,
            )
            f_base = fetches
            w_base = wbs
            a_base = acc_idx
            d_row_hits = d_row_empties = d_row_conflicts = 0
            d_bank_queue = d_bus_queue = 0
            d_demand = d_spec = d_e_queue = 0
            d_rebased = d_covered = 0
            d_both = d_pred_only = d_cache_only = d_neither = 0
            d_exposed = d_overhead = 0
            d_hits = d_resets = 0
            d_sc_dhit = d_sc_uhit = d_sc_evict = d_sc_dirty = 0
            d_hist = [0] * hist_n
    finally:
        if fetches != f_base or wbs != w_base:
            engine_issued = True
        if dram_static:
            acc_idx = fetches + wbs
        _flush_stats(
            flush_ctx, fetches, fetches - f_base, wbs - w_base, acc_idx,
            a_base, engine_issued, port_free, bus_free, sc_clock,
            d_row_hits, d_row_empties, d_row_conflicts, d_bank_queue,
            d_bus_queue, d_demand, d_spec, d_e_queue, d_rebased, d_covered,
            d_both, d_pred_only, d_cache_only, d_neither, d_exposed,
            d_overhead, d_hist, d_hits, d_resets, d_sc_dhit, d_sc_uhit,
            d_sc_evict, d_sc_dirty,
        )
        f_base = fetches
        w_base = wbs
        a_base = acc_idx
        d_row_hits = d_row_empties = d_row_conflicts = 0
        d_bank_queue = d_bus_queue = 0
        d_demand = d_spec = d_e_queue = 0
        d_rebased = d_covered = 0
        d_both = d_pred_only = d_cache_only = d_neither = 0
        d_exposed = d_overhead = 0
        d_hits = d_resets = 0
        d_sc_dhit = d_sc_uhit = d_sc_evict = d_sc_dirty = 0
        d_hist = [0] * hist_n

    # Drain trailing computation so IPC reflects the whole trace.
    cycle += 1.0  # avoid zero-cycle degenerate traces

    return _finalize_metrics(miss_trace, controller, scheme, cycle)


# -- backend registry ----------------------------------------------------------


class ReplayBackend:
    """One strategy for replaying a miss trace through a controller."""

    name = "abstract"

    def available(self) -> bool:
        """Whether this backend can run in the current environment."""
        return True

    def replay(
        self,
        miss_trace,
        controller,
        core: CoreConfig | None = None,
        scheme: str = "unnamed",
        on_fetch=None,
        hook_interval: int = 0,
    ) -> RunMetrics:
        raise NotImplementedError


class ReferenceBackend(ReplayBackend):
    """Today's loop: one live controller call per fetch / write-back."""

    name = "reference"

    def replay(
        self,
        miss_trace,
        controller,
        core: CoreConfig | None = None,
        scheme: str = "unnamed",
        on_fetch=None,
        hook_interval: int = 0,
    ) -> RunMetrics:
        return _replay_reference(
            miss_trace, controller, core, scheme, on_fetch, hook_interval
        )


class BatchedBackend(ReplayBackend):
    """Compiled-trace tight loop, falling back per-controller when needed."""

    name = "batched"

    def replay(
        self,
        miss_trace,
        controller,
        core: CoreConfig | None = None,
        scheme: str = "unnamed",
        on_fetch=None,
        hook_interval: int = 0,
    ) -> RunMetrics:
        supported = getattr(controller, "batched_replay_supported", None)
        if supported is None or not supported():
            # Functional / traced / degraded / proxied controllers take the
            # exact per-reference path; identity is trivially preserved.
            return _replay_reference(
                miss_trace, controller, core, scheme, on_fetch, hook_interval
            )
        core = core or CoreConfig()
        compiled = compile_trace(
            miss_trace, controller.address_map, controller.dram.config, core
        )
        return _replay_batched(
            compiled, miss_trace, controller, core, scheme, on_fetch,
            hook_interval,
        )


class NumbaBackend(BatchedBackend):
    """Hook for a JIT-compiled kernel; delegates to the batched core.

    The batched core's inner loop is already branch-light arithmetic over
    primitive locals and flat columns — the shape a numba kernel wants.
    Until such a kernel lands, this backend runs the batched core; when
    numba is not importable it does the same after warning once, so
    selecting ``numba`` never breaks a run.
    """

    name = "numba"
    _warned = False

    def available(self) -> bool:
        try:
            import numba  # noqa: F401
        except ImportError:
            return False
        return True

    def replay(
        self,
        miss_trace,
        controller,
        core: CoreConfig | None = None,
        scheme: str = "unnamed",
        on_fetch=None,
        hook_interval: int = 0,
    ) -> RunMetrics:
        if not self.available() and not NumbaBackend._warned:
            NumbaBackend._warned = True
            warnings.warn(
                "numba is not installed; the numba replay backend is "
                "running the pure-Python batched core instead",
                RuntimeWarning,
                stacklevel=2,
            )
        return super().replay(
            miss_trace, controller, core=core, scheme=scheme,
            on_fetch=on_fetch, hook_interval=hook_interval,
        )


BACKENDS: dict[str, ReplayBackend] = {}


def register_backend(backend: ReplayBackend) -> ReplayBackend:
    """Register ``backend`` under its ``name`` (later wins); returns it."""
    BACKENDS[backend.name] = backend
    return backend


register_backend(ReferenceBackend())
register_backend(BatchedBackend())
register_backend(NumbaBackend())


def available_backends() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(BACKENDS)


def resolve_backend(name: str | None = None) -> ReplayBackend:
    """Resolve a backend: explicit name > ``$REPRO_REPLAY_BACKEND`` > default.

    The environment is consulted on every call (not cached at import), so
    parallel workers and subprocesses inherit the parent's selection.
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV) or DEFAULT_BACKEND
    backend = BACKENDS.get(name)
    if backend is None:
        raise ValueError(
            f"unknown replay backend {name!r}; choose from "
            f"{', '.join(available_backends())}"
        )
    return backend
