"""Full-system simulation: core + cache hierarchy + secure memory controller.

Two ways to run a workload:

* **Single-phase** (:class:`SecureSystem`) — drive every access through the
  hierarchy and controller in lock-step.  Supports *functional* mode, where
  line data really is encrypted/decrypted and checked against a plaintext
  shadow image on every fetch (the strongest end-to-end correctness check).
* **Two-phase** (:func:`collect_miss_trace` then :func:`replay_miss_trace`)
  — simulate the cache hierarchy once per (workload, L2 size) to extract
  the scheme-independent L2 miss/write-back stream, then replay that stream
  through each security scheme.  This is exact for our models (no scheme
  changes the miss stream — OTP prediction adds no memory traffic, one of
  its selling points over pre-decryption, Section 9.2) and is what makes the
  14-benchmark x many-scheme sweeps of the paper's figures tractable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.core import CoreConfig, RunMetrics
from repro.cpu.engine import resolve_backend
from repro.cpu.trace import MemoryAccess
from repro.memory.address import AddressMap, DEFAULT_ADDRESS_MAP
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.secure.controller import SecureMemoryController
from repro.telemetry.profile import profile_scope

__all__ = [
    "MissEvent",
    "MissTrace",
    "collect_miss_trace",
    "replay_miss_trace",
    "FunctionalMismatchError",
    "SecureSystem",
]


@dataclass(frozen=True)
class MissEvent:
    """One L2-boundary event: optional fetches plus resulting write-backs."""

    gap_instructions: int
    gap_l2_hits: int
    fetch_addresses: tuple[int, ...]
    writeback_addresses: tuple[int, ...]


@dataclass(frozen=True)
class MissTrace:
    """The scheme-independent stream of off-chip events for one workload."""

    events: tuple[MissEvent, ...]
    total_instructions: int
    total_references: int
    l1_hits: int
    l2_hits: int
    l2_misses: int

    @property
    def miss_rate(self) -> float:
        if not self.total_references:
            return 0.0
        return self.l2_misses / self.total_references

    @property
    def misses_per_kilo_instruction(self) -> float:
        if not self.total_instructions:
            return 0.0
        return 1000.0 * self.l2_misses / self.total_instructions

    def publish(self, registry, prefix: str = "memory.hierarchy") -> None:
        """Export the hierarchy-level outcome of the trace under ``prefix``.

        The live :class:`~repro.memory.hierarchy.MemoryHierarchy` is
        discarded once the trace is collected (and cached traces never had
        one in-process), so cell snapshots publish the cache behaviour from
        this summary rather than from per-level tag arrays.
        """
        registry.counter(f"{prefix}.references").inc(self.total_references)
        registry.counter(f"{prefix}.instructions").inc(self.total_instructions)
        registry.counter(f"{prefix}.l1_hits").inc(self.l1_hits)
        registry.counter(f"{prefix}.l2_hits").inc(self.l2_hits)
        registry.counter(f"{prefix}.l2_misses").inc(self.l2_misses)
        registry.gauge(f"{prefix}.miss_rate").set(self.miss_rate)
        registry.gauge(f"{prefix}.mpki").set(self.misses_per_kilo_instruction)


def collect_miss_trace(
    trace: list[MemoryAccess],
    hierarchy: MemoryHierarchy | None = None,
    hierarchy_config: HierarchyConfig | None = None,
    flush_interval_instructions: int | None = None,
) -> MissTrace:
    """Run ``trace`` through the cache hierarchy, recording off-chip events.

    ``flush_interval_instructions`` models the periodic OS-induced dirty
    flush of Section 5.1 (the paper flushes every 25M cycles; we key the
    interval off instructions so the event stream stays scheme-independent).
    """
    if hierarchy is None:
        hierarchy = MemoryHierarchy(hierarchy_config)
    events: list[MissEvent] = []
    gap_instructions = 0
    gap_l2_hits = 0
    total_instructions = 0
    total_references = 0
    l1_hits = 0
    l2_hits = 0
    l2_misses = 0
    next_flush = flush_interval_instructions or 0

    for access in trace:
        gap_instructions += access.gap_instructions
        total_instructions += access.gap_instructions
        total_references += 1

        if flush_interval_instructions and total_instructions >= next_flush:
            next_flush += flush_interval_instructions
            flushed = tuple(hierarchy.flush_dirty())
            if flushed:
                events.append(
                    MissEvent(
                        gap_instructions=gap_instructions,
                        gap_l2_hits=gap_l2_hits,
                        fetch_addresses=(),
                        writeback_addresses=flushed,
                    )
                )
                gap_instructions = 0
                gap_l2_hits = 0

        outcome = hierarchy.access(
            access.address,
            is_write=access.is_write,
            is_instruction=access.is_instruction,
        )
        if outcome.l1_hit:
            l1_hits += 1
            continue
        if outcome.l2_hit:
            l2_hits += 1
            gap_l2_hits += 1
            continue
        l2_misses += 1
        events.append(
            MissEvent(
                gap_instructions=gap_instructions,
                gap_l2_hits=gap_l2_hits,
                fetch_addresses=outcome.fetched_lines,
                writeback_addresses=outcome.writeback_lines,
            )
        )
        gap_instructions = 0
        gap_l2_hits = 0

    return MissTrace(
        events=tuple(events),
        total_instructions=total_instructions,
        total_references=total_references,
        l1_hits=l1_hits,
        l2_hits=l2_hits,
        l2_misses=l2_misses,
    )


def replay_miss_trace(
    miss_trace: MissTrace,
    controller: SecureMemoryController,
    core: CoreConfig | None = None,
    scheme: str = "unnamed",
    on_fetch=None,
    backend: str | None = None,
    hook_interval: int = 0,
) -> RunMetrics:
    """Replay an off-chip event stream through one security scheme.

    Dispatches to a replay backend from :mod:`repro.cpu.engine` —
    ``backend`` names one explicitly, otherwise ``$REPRO_REPLAY_BACKEND``
    or the default (the batched core) decides.  Every backend produces
    bit-identical results; they differ only in speed.

    ``on_fetch``, when given, is called with the cumulative fetch count —
    the hook :mod:`repro.experiments.runner` uses to spill periodic
    telemetry snapshots (``SnapshotSeries``) without the replay loop
    knowing anything about registries.  ``hook_interval`` tells batched
    backends the coarsest schedule the caller needs: > 0 promises the
    caller only acts every ``hook_interval`` fetches, so the hook is
    called exactly at those multiples; 0 (the default) keeps per-fetch
    calls.
    """
    return resolve_backend(backend).replay(
        miss_trace,
        controller,
        core=core,
        scheme=scheme,
        on_fetch=on_fetch,
        hook_interval=hook_interval,
    )


class FunctionalMismatchError(Exception):
    """Decrypted line data did not match the plaintext shadow image."""


class SecureSystem:
    """Single-phase simulator (optionally with real end-to-end crypto).

    In functional mode the system maintains a plaintext *shadow image* of
    memory: every CPU store deterministically rewrites its line's image, the
    dirty-eviction path encrypts the image through the real AES pipeline,
    and every L2 miss decrypts what is in the untrusted backing store and
    compares it against the image.  A single bit of state mishandled
    anywhere — counters, roots, pads, MAC tree — surfaces as a
    :class:`FunctionalMismatchError` or an integrity failure.
    """

    def __init__(
        self,
        controller: SecureMemoryController | None = None,
        hierarchy: MemoryHierarchy | None = None,
        core: CoreConfig | None = None,
        functional_key: bytes | None = None,
        address_map: AddressMap = DEFAULT_ADDRESS_MAP,
    ):
        self.address_map = address_map
        if controller is None:
            controller = SecureMemoryController(
                key=functional_key, address_map=address_map
            )
        self.controller = controller
        self.hierarchy = hierarchy or MemoryHierarchy(address_map=address_map)
        self.core = core or CoreConfig()
        self.cycle = 0.0
        self._image: dict[int, bytes] = {}
        self._write_serial = 0

    @property
    def functional(self) -> bool:
        """True when real crypto + shadow-image checking is active."""
        return self.controller.functional

    def _image_line(self, line: int) -> bytes:
        return self._image.get(line, bytes(self.address_map.line_bytes))

    def _mutate_image(self, line: int) -> None:
        """Deterministically rewrite a line's plaintext on a CPU store."""
        self._write_serial += 1
        seed = (line * 0x9E3779B97F4A7C15 + self._write_serial) & ((1 << 64) - 1)
        pattern = seed.to_bytes(8, "big")
        repeats = self.address_map.line_bytes // 8
        self._image[line] = pattern * repeats

    def access(self, access: MemoryAccess):
        """Run one access end-to-end; returns the hierarchy outcome."""
        self.cycle += access.gap_instructions / self.core.issue_width
        line = self.address_map.line_address(access.address)
        outcome = self.hierarchy.access(
            access.address,
            is_write=access.is_write,
            is_instruction=access.is_instruction,
        )
        if not outcome.l1_hit:
            if outcome.l2_hit:
                self.cycle += self.core.l2_hit_penalty
            else:
                for address in outcome.fetched_lines:
                    result = self.controller.fetch_line(int(self.cycle), address)
                    if self.functional:
                        # Write-allocate: the fill must match the image as it
                        # was *before* this store merges its new data.
                        expected = self._image_line(address)
                        if result.plaintext != expected:
                            raise FunctionalMismatchError(
                                f"line {address:#x}: decrypted data does not "
                                f"match the shadow image (seqnum {result.seqnum})"
                            )
                    stall = (result.data_ready - self.cycle) * (
                        1.0 - self.core.miss_overlap
                    )
                    if stall > 0:
                        self.cycle += stall
                for address in outcome.writeback_lines:
                    plaintext = self._image_line(address) if self.functional else None
                    self.controller.writeback_line(int(self.cycle), address, plaintext)
        if self.functional and access.is_write:
            self._mutate_image(line)
        return outcome

    def run(self, trace: list[MemoryAccess]) -> "SecureSystem":
        """Run a whole trace; returns self for chaining."""
        with profile_scope("sim.secure_system_run"):
            for access in trace:
                self.access(access)
        return self

    def flush(self) -> int:
        """Flush all dirty lines through the encrypted write-back path."""
        lines = self.hierarchy.flush_dirty()
        for address in lines:
            plaintext = self._image_line(address) if self.functional else None
            self.controller.writeback_line(int(self.cycle), address, plaintext)
        return len(lines)
