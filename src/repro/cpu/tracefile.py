"""Compact binary trace files.

Workload traces can be saved and replayed so expensive generation (or an
externally captured trace — e.g. from a binary-instrumentation tool) can
feed the simulator directly.  The format is delta/varint encoded: typical
traces compress to ~3 bytes per reference.

Layout::

    magic  b"RTRC"            4 bytes
    version u8                currently 1
    count   varint            number of records
    records:
        flags  u8             bit0 write, bit1 instruction
        delta  zigzag varint  address - previous address
        gap    varint         gap_instructions

All integers little-endian base-128 varints.
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.cpu.trace import MemoryAccess

__all__ = ["TraceFormatError", "dump_trace", "load_trace", "save_trace_file", "load_trace_file"]

_MAGIC = b"RTRC"
_VERSION = 1


class TraceFormatError(Exception):
    """Raised for corrupt or unsupported trace files."""


def _write_varint(out: io.BytesIO, value: int) -> None:
    if value < 0:
        raise ValueError(f"varint must be non-negative, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes([byte | 0x80]))
        else:
            out.write(bytes([byte]))
            return


def _read_varint(data: bytes, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise TraceFormatError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise TraceFormatError("varint too long")


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


def dump_trace(trace: list[MemoryAccess]) -> bytes:
    """Serialize a trace to bytes."""
    out = io.BytesIO()
    out.write(_MAGIC)
    out.write(bytes([_VERSION]))
    _write_varint(out, len(trace))
    previous_address = 0
    for access in trace:
        flags = (1 if access.is_write else 0) | (2 if access.is_instruction else 0)
        out.write(bytes([flags]))
        _write_varint(out, _zigzag(access.address - previous_address))
        _write_varint(out, access.gap_instructions)
        previous_address = access.address
    return out.getvalue()


def load_trace(data: bytes) -> list[MemoryAccess]:
    """Deserialize a trace from bytes."""
    if data[:4] != _MAGIC:
        raise TraceFormatError("not a trace file (bad magic)")
    if len(data) < 5:
        raise TraceFormatError("truncated header")
    if data[4] != _VERSION:
        raise TraceFormatError(f"unsupported version {data[4]}")
    count, offset = _read_varint(data, 5)
    trace: list[MemoryAccess] = []
    previous_address = 0
    for _ in range(count):
        if offset >= len(data):
            raise TraceFormatError("truncated record")
        flags = data[offset]
        offset += 1
        if flags & ~0x03:
            raise TraceFormatError(f"unknown flags {flags:#x}")
        delta, offset = _read_varint(data, offset)
        gap, offset = _read_varint(data, offset)
        address = previous_address + _unzigzag(delta)
        if address < 0:
            raise TraceFormatError("negative address after delta decode")
        trace.append(
            MemoryAccess(
                address=address,
                is_write=bool(flags & 1),
                is_instruction=bool(flags & 2),
                gap_instructions=gap,
            )
        )
        previous_address = address
    if offset != len(data):
        raise TraceFormatError(f"{len(data) - offset} trailing bytes")
    return trace


def save_trace_file(path: str | Path, trace: list[MemoryAccess]) -> None:
    """Write a trace to ``path``."""
    Path(path).write_bytes(dump_trace(trace))


def load_trace_file(path: str | Path) -> list[MemoryAccess]:
    """Read a trace from ``path``."""
    return load_trace(Path(path).read_bytes())
