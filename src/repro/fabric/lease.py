"""Atomic per-cell leases with fencing tokens over a shared filesystem.

One lease file per grid cell, named by the cell's content-addressed cache
key, inside a per-sweep lease directory (``<cache root>/leases/<sweep
key>/``).  The protocol assumes nothing beyond what the result cache
already assumes: ``open(O_CREAT | O_EXCL)`` and ``os.replace`` are atomic
on the shared filesystem.

**Claim.**  A fresh cell is claimed by ``O_EXCL``-creating its lease file
— exactly one contender wins.  A cell whose lease is *expired* (heartbeat
older than the TTL), *released*, or *torn* is taken over by atomically
renaming a complete replacement into place and then **re-reading** the
file: rename is last-writer-wins, so the loser of a takeover race
discovers the winner's owner id on the verify read and walks away.

**Fencing.**  Every successful claim carries a fencing token strictly
greater than any token previously issued for that cell (a per-cell
``.token`` high-water file survives even torn lease payloads).  The token
travels with the worker and is compared at cache-store time
(:meth:`LeaseManager.fence`): if a newer token exists, the store is
refused.  Leases are therefore only a *liveness* optimisation — mutual
exclusion failures (zombie workers resumed after takeover, clock skew
past the TTL) cost duplicate computation, never wrong or torn results.

**Heartbeat.**  The owner periodically rewrites its lease with a fresh
timestamp.  Renewal re-reads before and after the write; discovering a
foreign owner or higher token raises :class:`LeaseLost`, telling the
worker to abandon the cell (its store would be fenced out anyway).

Every lease payload carries a content digest (the cache's discipline), so
a torn write — a crash mid-``O_EXCL``-write, or injected corruption — is
*detected* rather than trusted, and the cell is taken over like an
expired one.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "LEASE_SCHEMA",
    "Lease",
    "LeaseError",
    "LeaseLost",
    "LeaseStats",
    "LeaseManager",
    "lease_root",
]

LEASE_SCHEMA = "repro.fabric.lease/v1"


def lease_root(cache_root: str | Path, sweep_key: str) -> Path:
    """The lease directory of one sweep under a cache root."""
    return Path(cache_root) / "leases" / sweep_key


class LeaseError(Exception):
    """Base class for lease protocol failures."""


class LeaseLost(LeaseError):
    """The lease was taken over by another owner (renewal/release failed)."""


@dataclass(frozen=True)
class Lease:
    """One cell's lease as read from (or written to) its lease file."""

    key: str                   # cell cache key
    owner: str                 # claiming worker's id ("host:pid" by default)
    token: int                 # fencing token; strictly increasing per key
    state: str                 # "held" | "released"
    heartbeat: float           # unix seconds of the last renewal
    acquired: float            # unix seconds of the claim

    def payload(self) -> dict:
        body = {"schema": LEASE_SCHEMA, **dataclasses.asdict(self)}
        body["digest"] = _payload_digest(body)
        return body


def _payload_digest(body: dict) -> str:
    trimmed = {k: v for k, v in body.items() if k != "digest"}
    return hashlib.sha256(
        json.dumps(trimmed, sort_keys=True).encode()
    ).hexdigest()


@dataclass
class LeaseStats:
    """What one manager's lease traffic looked like."""

    acquired: int = 0          # fresh O_EXCL claims won
    contended: int = 0         # claims refused (someone else holds it)
    taken_over: int = 0        # expired/released/torn leases claimed
    lost_races: int = 0        # takeover renames overwritten by a winner
    renewals: int = 0          # successful heartbeats
    lost: int = 0              # LeaseLost raised (ownership stolen)
    released: int = 0
    corrupt_leases: int = 0    # torn/unparsable lease files seen
    fenced_rejects: int = 0    # stores refused by token comparison

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)

    def publish(self, registry, prefix: str = "fabric.lease") -> None:
        for name, value in self.as_dict().items():
            registry.counter(f"{prefix}.{name}").inc(value)


class LeaseManager:
    """Claim, renew, release and fence leases for one sweep's cells.

    Parameters
    ----------
    root:
        The sweep's lease directory (see :func:`lease_root`); created on
        first use.
    owner:
        This worker's identity, recorded in every lease it wins.
    ttl_seconds:
        A lease whose heartbeat is older than this is considered
        abandoned and may be taken over.
    clock:
        Injectable time source (tests and the clock-skew chaos replace
        it); defaults to :func:`time.time` — wall time, because leases
        are compared *across hosts*.
    """

    def __init__(
        self,
        root: str | Path,
        owner: str | None = None,
        ttl_seconds: float = 10.0,
        clock=time.time,
    ):
        if ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be > 0, got {ttl_seconds}")
        self.root = Path(root)
        self.owner = owner or f"{os.uname().nodename}:{os.getpid()}"
        self.ttl_seconds = ttl_seconds
        self.clock = clock
        self.stats = LeaseStats()

    # -- paths -----------------------------------------------------------------

    def _lease_path(self, key: str) -> Path:
        return self.root / f"{key}.lease"

    def _token_path(self, key: str) -> Path:
        return self.root / f"{key}.token"

    @property
    def _store_journal(self) -> Path:
        return self.root / "stores.jsonl"

    # -- reading ---------------------------------------------------------------

    def read(self, key: str) -> Lease | None:
        """The current lease for ``key``: a :class:`Lease`, or ``None`` if
        the file is absent or torn (torn counts in ``corrupt_leases``)."""
        try:
            raw = self._lease_path(key).read_text()
        except (FileNotFoundError, OSError):
            return None
        try:
            body = json.loads(raw)
            if body.get("digest") != _payload_digest(body):
                raise ValueError("digest mismatch")
            return Lease(
                key=body["key"],
                owner=body["owner"],
                token=int(body["token"]),
                state=body["state"],
                heartbeat=float(body["heartbeat"]),
                acquired=float(body["acquired"]),
            )
        except (ValueError, KeyError, TypeError):
            self.stats.corrupt_leases += 1
            return None

    def _token_floor(self, key: str) -> int:
        """The highest fencing token known to have been issued for ``key``.

        The per-cell ``.token`` high-water file is what keeps tokens
        monotonic across torn lease payloads: a corrupt lease cannot be
        trusted for its token, but the floor file was written by the last
        *successful* claim.
        """
        floor = 0
        lease = self.read(key)
        if lease is not None:
            floor = lease.token
        try:
            floor = max(floor, int(self._token_path(key).read_text().strip()))
        except (FileNotFoundError, OSError, ValueError):
            pass
        return floor

    def _record_token(self, key: str, token: int) -> None:
        path = self._token_path(key)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        try:
            tmp.write_text(str(token))
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)

    def expired(self, lease: Lease) -> bool:
        """Whether ``lease`` is abandoned by this manager's clock."""
        return lease.heartbeat + self.ttl_seconds < self.clock()

    # -- claiming --------------------------------------------------------------

    def _write_lease(self, lease: Lease) -> None:
        """Atomically replace the lease file with ``lease``'s payload."""
        path = self._lease_path(lease.key)
        data = json.dumps(lease.payload(), sort_keys=True).encode()
        tmp = path.with_suffix(f".tmp{self.owner.replace('/', '_')}.{os.getpid()}")
        tmp.write_bytes(data)
        os.replace(tmp, path)

    def try_acquire(self, key: str) -> Lease | None:
        """Claim ``key``: a :class:`Lease` carrying our fencing token, or
        ``None`` when another live owner holds it (or we lost the race).

        Raises ``OSError`` only for an unusable lease directory (the
        worker's cue to degrade to single-host supervised mode).
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._lease_path(key)
        now = self.clock()
        if not path.exists():
            lease = Lease(
                key=key, owner=self.owner, token=self._token_floor(key) + 1,
                state="held", heartbeat=now, acquired=now,
            )
            data = json.dumps(lease.payload(), sort_keys=True).encode()
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                pass  # raced another claimant; fall through to the read path
            else:
                try:
                    os.write(fd, data)
                finally:
                    os.close(fd)
                self._record_token(key, lease.token)
                self.stats.acquired += 1
                return lease
        current = self.read(key)
        if current is not None and current.state == "held":
            if current.owner == self.owner:
                return current  # already ours (idempotent re-claim)
            if not self.expired(current):
                self.stats.contended += 1
                return None
        # Expired, released, or torn: take over with a higher token, then
        # verify we actually won (os.replace is last-writer-wins).
        token = self._token_floor(key) + 1
        lease = Lease(
            key=key, owner=self.owner, token=token,
            state="held", heartbeat=now, acquired=now,
        )
        self._write_lease(lease)
        self._record_token(key, token)
        verify = self.read(key)
        if verify is None or verify.owner != self.owner or verify.token != token:
            self.stats.lost_races += 1
            return None
        self.stats.taken_over += 1
        return lease

    # -- ownership maintenance -------------------------------------------------

    def renew(self, lease: Lease) -> Lease:
        """Heartbeat: refresh the lease's timestamp, verifying ownership.

        Raises :class:`LeaseLost` if the cell was taken over — the caller
        must stop working the cell (its store would be fenced out).
        """
        current = self.read(lease.key)
        if (
            current is None
            or current.owner != lease.owner
            or current.token != lease.token
        ):
            self.stats.lost += 1
            raise LeaseLost(
                f"lease for {lease.key[:12]} now held by "
                f"{current.owner if current else '<torn/absent>'}"
            )
        renewed = dataclasses.replace(lease, heartbeat=self.clock())
        self._write_lease(renewed)
        verify = self.read(lease.key)
        if (
            verify is None
            or verify.owner != lease.owner
            or verify.token != lease.token
        ):
            self.stats.lost += 1
            raise LeaseLost(f"lease for {lease.key[:12]} stolen during renewal")
        self.stats.renewals += 1
        return renewed

    def release(self, lease: Lease) -> None:
        """Mark the lease released (keeps the file: it carries the token).

        A lease we no longer own is left untouched — the new owner's
        state must win.
        """
        current = self.read(lease.key)
        if (
            current is None
            or current.owner != lease.owner
            or current.token != lease.token
        ):
            return
        self._write_lease(dataclasses.replace(lease, state="released"))
        self.stats.released += 1

    # -- fencing ---------------------------------------------------------------

    def fence_ok(self, lease: Lease) -> bool:
        """Whether a store under ``lease`` is still permitted.

        True iff no token newer than ours has been issued for the cell.
        An *expired but untaken* lease still passes — the computed result
        is still the cell's unique result; only a successor's claim
        invalidates it.
        """
        if self._token_floor(lease.key) > lease.token:
            self.stats.fenced_rejects += 1
            return False
        current = self.read(lease.key)
        if current is not None and (
            current.token > lease.token
            or (current.token == lease.token and current.owner != lease.owner)
        ):
            self.stats.fenced_rejects += 1
            return False
        return True

    def fence(self, lease: Lease):
        """A zero-argument fencing check bound to ``lease`` (for
        :meth:`repro.experiments.cache.ResultCache.store_result`)."""
        return lambda: self.fence_ok(lease)

    def journal_store(self, lease: Lease) -> None:
        """Append one fenced-store record to the sweep's store journal.

        The chaos soak replays this journal to prove no cell was ever
        stored twice under the same fencing token.
        """
        record = {"key": lease.key, "token": lease.token, "owner": lease.owner}
        try:
            with self._store_journal.open("a") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                handle.flush()
        except OSError:
            pass  # journal is evidence, not correctness

    def stored_tokens(self) -> list[tuple[str, int, str]]:
        """Replay the store journal as ``(key, token, owner)`` triples."""
        try:
            text = self._store_journal.read_text()
        except (FileNotFoundError, OSError):
            return []
        triples = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                triples.append(
                    (record["key"], int(record["token"]), record["owner"])
                )
            except (ValueError, KeyError, TypeError):
                continue
        return triples

    # -- observation -----------------------------------------------------------

    def snapshot(self) -> list[dict]:
        """Every lease in the directory, decorated with heartbeat age.

        The coordinator's status view; corrupt leases surface with
        ``state == "torn"`` so an operator sees them instead of a silent
        skip.
        """
        if not self.root.is_dir():
            return []
        now = self.clock()
        rows = []
        for path in sorted(self.root.glob("*.lease")):
            key = path.name[: -len(".lease")]
            lease = self.read(key)
            if lease is None:
                rows.append({"key": key, "state": "torn", "owner": None,
                             "token": self._token_floor(key),
                             "heartbeat_age": None, "expired": True})
                continue
            rows.append(
                {
                    "key": key,
                    "state": lease.state,
                    "owner": lease.owner,
                    "token": lease.token,
                    "heartbeat_age": max(0.0, now - lease.heartbeat),
                    "expired": self.expired(lease),
                }
            )
        return rows
