"""Swarm coordination: seed, watch, and merge a multi-worker sweep.

The coordinator owns the three verbs behind the ``repro swarm`` CLI:

* **start** — persist a :class:`SwarmSpec` (the sweep's shape) under the
  shared cache root and open its checkpoint manifest, so any number of
  ``repro swarm drain`` invocations — in other terminals, or on other
  hosts sharing the cache directory — can pick the work up by sweep key.
* **status** — fold the manifest, the lease directory, and the worker
  beacons into one liveness/work table: per-cell state (done / failed /
  leased-by-whom / pending, heartbeat ages, fencing tokens) and per-host
  totals.
* **drain** — run N local workers against the swarm, then collect.

**Collection is a merge, not a gather.**  Finished cells live in the
content-addressed result cache; :func:`collect_sweep` reads them back by
key and assembles a :class:`~repro.experiments.sweep.SweepResult`.
Snapshot merging is commutative and associative (locked by the telemetry
suite), so the merged snapshot of a sweep drained by any number of hosts
in any interleaving equals the serial run's — the property the fabric
soak (``repro faults --layer fabric``) asserts byte-for-byte.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

from repro.experiments import cache as result_cache
from repro.experiments.config import TABLE1_1M, TABLE1_256K, MachineConfig
from repro.experiments.runner import SCHEMES
from repro.experiments.supervisor import (
    SweepManifest,
    grid_cells,
    manifest_path,
    sweep_key,
    verified_done_cell,
)
from repro.fabric.lease import LeaseManager, lease_root
from repro.fabric.worker import (
    FabricPolicy,
    FabricWorker,
    LeaseDirUnavailable,
)
from repro.ioutil import atomic_write_json

__all__ = [
    "SWARM_SCHEMA",
    "SwarmSpec",
    "start_swarm",
    "swarm_status",
    "render_status",
    "collect_sweep",
    "drain_swarm",
]

SWARM_SCHEMA = "repro.fabric.swarm/v1"

_MACHINES: dict[str, MachineConfig] = {
    cfg.name: cfg for cfg in (TABLE1_256K, TABLE1_1M)
}


@dataclass(frozen=True)
class SwarmSpec:
    """The shape of one distributed sweep (host-portable, JSON-stable)."""

    benchmarks: tuple[str, ...]
    schemes: tuple[str, ...]
    machine: str = TABLE1_256K.name
    references: int | None = None
    seed: int = 1

    def __post_init__(self) -> None:
        if not self.benchmarks or not self.schemes:
            raise ValueError("a swarm needs at least one benchmark and scheme")
        unknown = [s for s in self.schemes if s not in SCHEMES]
        if unknown:
            raise ValueError(f"unknown scheme(s): {', '.join(unknown)}")
        if self.machine not in _MACHINES:
            raise ValueError(
                f"unknown machine {self.machine!r}; "
                f"choose from {', '.join(sorted(_MACHINES))}"
            )

    @property
    def machine_config(self) -> MachineConfig:
        return _MACHINES[self.machine]

    @property
    def key(self) -> str:
        return sweep_key(
            list(self.benchmarks), list(self.schemes),
            self.machine_config, self.references, self.seed,
        )

    def cells(self):
        return grid_cells(
            list(self.benchmarks), list(self.schemes),
            self.machine_config, self.references, self.seed,
        )

    def meta(self) -> dict:
        return {
            "key": self.key,
            "benchmarks": list(self.benchmarks),
            "schemes": list(self.schemes),
            "machine": self.machine,
            "references": self.references,
            "seed": self.seed,
        }

    def to_dict(self) -> dict:
        return {"schema": SWARM_SCHEMA, **self.meta()}

    @classmethod
    def from_dict(cls, payload: dict) -> "SwarmSpec":
        return cls(
            benchmarks=tuple(payload["benchmarks"]),
            schemes=tuple(payload["schemes"]),
            machine=payload.get("machine", TABLE1_256K.name),
            references=payload.get("references"),
            seed=payload.get("seed", 1),
        )


def _spec_path(cache_root: Path | str, key: str) -> Path:
    return Path(cache_root) / f"swarm-{key}.json"


def load_spec(key: str, cache_root: Path | str | None = None) -> SwarmSpec:
    """Load a started swarm's spec by its sweep key."""
    root = Path(cache_root) if cache_root else result_cache.default_cache().root
    payload = json.loads(_spec_path(root, key).read_text())
    return SwarmSpec.from_dict(payload)


def start_swarm(spec: SwarmSpec, cache_root: Path | str | None = None) -> str:
    """Seed a swarm: persist the spec, open the manifest, create the
    lease directory.  Idempotent; returns the sweep key other terminals
    and hosts use to join."""
    root = Path(cache_root) if cache_root else result_cache.default_cache().root
    root.mkdir(parents=True, exist_ok=True)
    key = spec.key
    atomic_write_json(_spec_path(root, key), spec.to_dict(), sort_keys=True)
    SweepManifest.open(manifest_path(root, key), meta=spec.meta())
    try:
        lease_root(root, key).mkdir(parents=True, exist_ok=True)
    except OSError:
        pass  # workers detect this and degrade to single-host mode
    return key


# -- status --------------------------------------------------------------------


def swarm_status(
    spec: SwarmSpec,
    cache_root: Path | str | None = None,
    ttl_seconds: float = 10.0,
    clock=time.time,
) -> dict:
    """One machine-readable view of a swarm's cells, leases, and hosts."""
    disk = result_cache.default_cache()
    root = Path(cache_root) if cache_root else disk.root
    key = spec.key
    manifest = SweepManifest.open(manifest_path(root, key), meta=spec.meta())
    leases = LeaseManager(
        lease_root(root, key), owner="status", ttl_seconds=ttl_seconds,
        clock=clock,
    )
    lease_rows = {row["key"]: row for row in leases.snapshot()}

    cells = []
    counts = {"done": 0, "failed": 0, "leased": 0, "pending": 0, "stale": 0}
    for benchmark, cell_spec, cell_key in spec.cells():
        row = {
            "cell": f"{benchmark}/{cell_spec.name}",
            "key": cell_key,
            "state": "pending",
            "owner": None,
            "token": None,
            "heartbeat_age": None,
        }
        lease = lease_rows.get(cell_key)
        if cell_key in manifest.done:
            if verified_done_cell(disk, cell_key) is not None:
                row["state"] = "done"
                row["owner"] = manifest.done[cell_key].get("owner")
            else:
                # Journaled done, but the entry no longer verifies: the
                # cell will be recomputed by the next drain pass.
                row["state"] = "stale"
        elif cell_key in manifest.failed:
            row["state"] = "failed"
        elif lease is not None and lease["state"] == "held":
            row["state"] = "expired" if lease["expired"] else "leased"
        if lease is not None:
            row["owner"] = row["owner"] or lease["owner"]
            row["token"] = lease["token"]
            row["heartbeat_age"] = lease["heartbeat_age"]
        counts[row["state"]] = counts.get(row["state"], 0) + 1
        cells.append(row)

    hosts: dict[str, dict] = {}
    workers_dir = lease_root(root, key) / "workers"
    if workers_dir.is_dir():
        now = clock()
        for path in sorted(workers_dir.glob("*.json")):
            try:
                beacon = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            owner = beacon.get("owner", path.stem)
            hosts[owner] = {
                "state": beacon.get("state"),
                "beacon_age": max(0.0, now - float(beacon.get("updated", now))),
                "executed": beacon.get("stats", {}).get("cells_executed", 0),
                "stores": beacon.get("stats", {}).get("stores", 0),
                "fenced_out": beacon.get("stats", {}).get("cells_fenced_out", 0),
                "takeovers": beacon.get("leases", {}).get("taken_over", 0),
            }

    return {
        "key": key,
        "spec": spec.meta(),
        "cells": cells,
        "counts": counts,
        "total": len(cells),
        "hosts": hosts,
        "complete": counts["done"] == len(cells),
    }


def render_status(status: dict) -> str:
    """Human-readable swarm table (``repro swarm status``)."""
    counts = status["counts"]
    lines = [
        f"swarm {status['key'][:16]}  "
        f"({status['total']} cells: {counts['done']} done, "
        f"{counts.get('leased', 0)} leased, "
        f"{counts.get('expired', 0)} expired, "
        f"{counts['pending']} pending, {counts['failed']} failed, "
        f"{counts.get('stale', 0)} stale)",
        f"{'cell':<32}{'state':<10}{'owner':<22}{'token':>6}{'hb age':>9}",
    ]
    for row in status["cells"]:
        age = row["heartbeat_age"]
        lines.append(
            f"{row['cell']:<32}{row['state']:<10}"
            f"{(row['owner'] or '-'):<22}"
            f"{row['token'] if row['token'] is not None else '-':>6}"
            f"{f'{age:.1f}s' if age is not None else '-':>9}"
        )
    if status["hosts"]:
        lines.append("")
        lines.append(
            f"{'host':<26}{'state':<10}{'beacon':>8}{'ran':>5}"
            f"{'stored':>7}{'fenced':>7}{'stolen':>7}"
        )
        for owner in sorted(status["hosts"]):
            host = status["hosts"][owner]
            lines.append(
                f"{owner:<26}{(host['state'] or '?'):<10}"
                f"{host['beacon_age']:>7.1f}s{host['executed']:>5}"
                f"{host['stores']:>7}{host['fenced_out']:>7}"
                f"{host['takeovers']:>7}"
            )
    lines.append("complete" if status["complete"] else "in progress")
    return "\n".join(lines)


# -- collection ----------------------------------------------------------------


def collect_sweep(spec: SwarmSpec, strict: bool = True):
    """Assemble the drained sweep from the shared cache.

    Every cell is read back (and digest-verified) through the cache by
    its content key, in the canonical grid order — merges of the
    per-cell snapshots are commutative and associative, so this equals
    the serial ``run_grid`` result no matter how many hosts drained the
    manifest or in what interleaving.  With ``strict`` (default) a
    missing or unverifiable cell raises; otherwise it is skipped (the
    partial-progress view used by ``swarm status``-style tooling).
    """
    from repro.experiments.sweep import SweepResult

    disk = result_cache.default_cache()
    sweep = SweepResult(machine=spec.machine, references=spec.references)
    missing = []
    for benchmark, cell_spec, cell_key in spec.cells():
        cell = verified_done_cell(disk, cell_key)
        if cell is None:
            missing.append(f"{benchmark}/{cell_spec.name}")
            continue
        sweep.results[(benchmark, cell_spec.name)] = cell.metrics
        sweep.snapshots[(benchmark, cell_spec.name)] = cell.snapshot
    if missing and strict:
        raise RuntimeError(
            f"swarm incomplete: {len(missing)} cell(s) not drained "
            f"({', '.join(missing[:4])}{'...' if len(missing) > 4 else ''})"
        )
    return sweep


# -- draining ------------------------------------------------------------------


def _drain_worker_entry(spec_payload, owner, policy, chaos, cache_dir) -> None:
    """Subprocess body of one drain worker (fork-safe, self-contained)."""
    import os

    os.environ[result_cache.CACHE_DIR_ENV] = str(cache_dir)
    result_cache.reset_default_cache()
    from repro.experiments import runner

    runner._MISS_TRACE_CACHE.clear()
    spec = SwarmSpec.from_dict(spec_payload)
    worker = FabricWorker(spec, owner=owner, policy=policy, chaos=chaos)
    try:
        worker.drain()
    except LeaseDirUnavailable:
        os._exit(3)


def drain_swarm(
    spec: SwarmSpec,
    workers: int = 2,
    policy: FabricPolicy | None = None,
    chaos=None,
    tracer=None,
    registry=None,
    owner_prefix: str = "w",
    strict: bool = True,
):
    """Drain a swarm with ``workers`` local worker processes and collect.

    Worker 0 runs *in this process* (so its tracer/registry wiring —
    including the ``fabric.lease.heartbeat_age`` track — lands in the
    caller's telemetry); the rest fork.  A worker process that dies
    (chaos, OOM, operator kill) is *not* restarted: its leases expire and
    the survivors take the cells over — that is the mechanism under test.

    Degrades to single-host supervised execution when the lease
    directory is unusable, preserving the results contract.  Returns the
    collected :class:`~repro.experiments.sweep.SweepResult` with a
    ``fabric`` attribute describing what the drain did.
    """
    import multiprocessing

    policy = policy or FabricPolicy()
    disk = result_cache.default_cache()
    start_swarm(spec, cache_root=disk.root)

    mp = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    )
    procs = []
    for index in range(1, max(1, workers)):
        proc = mp.Process(
            target=_drain_worker_entry,
            args=(
                spec.to_dict(), f"{owner_prefix}{index}", policy, chaos,
                str(disk.root),
            ),
            daemon=True,
        )
        proc.start()
        procs.append(proc)

    local = FabricWorker(
        spec, owner=f"{owner_prefix}0", policy=policy, chaos=chaos,
        tracer=tracer, registry=registry,
    )
    degraded = False
    try:
        local.drain()
    except LeaseDirUnavailable:
        degraded = True
    finally:
        for proc in procs:
            proc.join(timeout=policy.drain_timeout_seconds)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)

    if degraded:
        from repro.experiments.supervisor import run_grid_supervised

        sweep = run_grid_supervised(
            list(spec.benchmarks), list(spec.schemes),
            machine=spec.machine_config, references=spec.references,
            seed=spec.seed, use_cache=True,
            tracer=tracer, registry=registry,
        )
        sweep.fabric = {"degraded": True, "workers": 0}
        return sweep

    sweep = collect_sweep(spec, strict=strict)
    exit_codes = [proc.exitcode for proc in procs]
    sweep.fabric = {
        "degraded": False,
        "workers": max(1, workers),
        "local": local.stats.as_dict(),
        "local_leases": local.lease.stats.as_dict(),
        "worker_exit_codes": exit_codes,
        "stored_tokens": local.lease.stored_tokens(),
    }
    return sweep
