"""Distributed sweep fabric: lease-based multi-host grid execution.

The single-host half of distributed sweeps already exists — pure cells
keyed by content-addressed cache keys, an append-only JSONL checkpoint
manifest, and a digest-verified self-healing result cache.  This package
adds the coordination layer that lets N worker processes (or hosts
sharing a filesystem) cooperatively drain *one* manifest without double
work, lost work, or divergent results:

* :mod:`repro.fabric.lease` — per-cell lease files with monotonically
  increasing **fencing tokens**: atomic claim (``O_EXCL``), heartbeat
  renewal, TTL-based takeover of dead owners, and token comparison at
  cache-store time so a resurrected zombie can never clobber a newer
  owner's result.
* :mod:`repro.fabric.worker` — the drain loop: claim → heartbeat →
  execute → journal ``done`` → release, with bounded backoff on
  contention and graceful degradation to single-host supervised mode
  when the lease directory is unavailable.
* :mod:`repro.fabric.coordinator` — ``repro swarm start/status/drain``:
  seed the manifest, watch per-host liveness and per-cell state, and
  merge the finished cells into a :class:`~repro.experiments.sweep.
  SweepResult` equal to the serial run (snapshot merges are commutative
  and associative, so multi-host == serial — locked by the fabric soak).

Determinism contract: cells are pure, the cache key is the unit of work,
and every store is fenced — therefore serial == 2-worker == N-worker ==
N-worker-under-chaos, byte-identical snapshots included (see
``repro faults --layer fabric``).
"""

from repro.fabric.coordinator import (
    SwarmSpec,
    collect_sweep,
    drain_swarm,
    render_status,
    start_swarm,
    swarm_status,
)
from repro.fabric.lease import Lease, LeaseLost, LeaseManager, LeaseStats
from repro.fabric.worker import FabricPolicy, FabricStats, FabricWorker

__all__ = [
    "Lease",
    "LeaseLost",
    "LeaseManager",
    "LeaseStats",
    "FabricPolicy",
    "FabricStats",
    "FabricWorker",
    "SwarmSpec",
    "start_swarm",
    "swarm_status",
    "render_status",
    "collect_sweep",
    "drain_swarm",
]
