"""The fabric drain loop: claim → heartbeat → execute → journal → release.

A :class:`FabricWorker` is one participant in a multi-worker (possibly
multi-host) sweep: it walks the sweep's cells in the shared canonical
order (:func:`repro.experiments.supervisor.grid_cells`), claims whatever
is unclaimed via :class:`~repro.fabric.lease.LeaseManager`, executes the
cell with the *same* :func:`~repro.experiments.runner.run_cell` as every
other engine (so results are identical by construction), stores the
result under a **fencing check**, journals ``done`` into the shared
checkpoint manifest, and releases the lease.

Liveness is cooperative: a background heartbeat thread renews the lease
every ``ttl / 3`` seconds; a worker that dies mid-cell simply stops
renewing, and a peer takes the lease over once the TTL lapses.  A worker
that *loses* its lease (takeover after a heartbeat stall, a duplicate
claim from a skewed peer) finishes its computation but is refused at
store time by the fencing token, so the cell is neither lost nor stored
twice under one token.

When the lease directory itself is unusable (read-only share, missing
mount), the drain degrades gracefully: :meth:`FabricWorker.drain` raises
:class:`LeaseDirUnavailable` and the coordinator falls back to
single-host supervised execution — fewer hosts, same results.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
from dataclasses import dataclass

from repro.experiments import cache as result_cache
from repro.experiments.runner import CellResult, get_miss_trace, run_cell
from repro.experiments.supervisor import (
    SweepManifest,
    grid_cells,
    manifest_path,
    sweep_key,
    verified_done_cell,
)
from repro.fabric.lease import Lease, LeaseLost, LeaseManager, lease_root
from repro.ioutil import atomic_write_json
from repro.telemetry.log import get_logger

__all__ = [
    "CHAOS_KILL_EXIT",
    "FabricPolicy",
    "FabricStats",
    "LeaseDirUnavailable",
    "DrainStalled",
    "FabricWorker",
]

#: Exit code of a chaos-commanded mid-lease worker death.
CHAOS_KILL_EXIT = 47

_LOG = get_logger("fabric.worker")


class LeaseDirUnavailable(OSError):
    """The lease directory cannot be used; degrade to single-host mode."""


class DrainStalled(RuntimeError):
    """The drain made no progress within the configured timeout."""


@dataclass(frozen=True)
class FabricPolicy:
    """Lease and pacing parameters of one fabric worker."""

    ttl_seconds: float = 10.0
    heartbeat_interval_seconds: float | None = None   # None -> ttl / 3
    claim_backoff_seconds: float = 0.05
    claim_backoff_multiplier: float = 2.0
    claim_backoff_cap_seconds: float = 0.5
    drain_timeout_seconds: float = 600.0

    def __post_init__(self) -> None:
        if self.ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be > 0, got {self.ttl_seconds}")
        if (
            self.heartbeat_interval_seconds is not None
            and not 0 < self.heartbeat_interval_seconds
        ):
            raise ValueError("heartbeat_interval_seconds must be > 0")
        if self.claim_backoff_multiplier < 1:
            raise ValueError("claim_backoff_multiplier must be >= 1")
        if self.drain_timeout_seconds <= 0:
            raise ValueError("drain_timeout_seconds must be > 0")

    @property
    def heartbeat_interval(self) -> float:
        if self.heartbeat_interval_seconds is not None:
            return self.heartbeat_interval_seconds
        return self.ttl_seconds / 3.0


@dataclass
class FabricStats:
    """What one worker did during a drain."""

    cells_executed: int = 0        # computed by this worker
    cells_cache_hits: int = 0      # claimed, then found already in cache
    cells_skipped_done: int = 0    # manifest said done (verified) at claim time
    cells_fenced_out: int = 0      # computed but refused at store time
    stores: int = 0                # fenced stores that landed
    passes: int = 0                # sweeps over the pending list
    heartbeats: int = 0            # successful renewals (mirror of lease stats)
    lease_lost: int = 0            # takeovers detected mid-cell
    degraded: int = 0              # 1 if the drain fell back to supervised mode

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)

    def publish(self, registry, prefix: str = "fabric.worker") -> None:
        for name, value in self.as_dict().items():
            registry.counter(f"{prefix}.{name}").inc(value)


class _HeartbeatPump(threading.Thread):
    """Renews one lease in the background while its cell executes.

    Also the fabric's observability heartbeat: every tick emits a
    ``fabric.lease.heartbeat_age`` counter sample (track ``fabric``) onto
    the worker's tracer, so ``repro trace`` timelines show lease health
    alongside ``sweep.inflight``.  A chaos-commanded stall keeps the
    thread alive but skips renewals until the stall elapses — the emitted
    age then visibly climbs toward the TTL.
    """

    def __init__(self, manager, lease, interval, tracer=None, epoch=0.0,
                 stall_seconds=0.0):
        super().__init__(daemon=True)
        self.manager = manager
        self.lease = lease
        self.interval = interval
        self.tracer = tracer
        self.epoch = epoch
        self.stall_until = (
            manager.clock() + stall_seconds if stall_seconds > 0 else 0.0
        )
        self.lost = False
        self.renewals = 0
        self._halt = threading.Event()

    def _emit_age(self) -> None:
        if self.tracer is None or not getattr(self.tracer, "enabled", False):
            return
        now = self.manager.clock()
        age = max(0.0, now - self.lease.heartbeat)
        at = max(0, int((time.monotonic() - self.epoch) * 1_000_000))
        self.tracer.counter(
            "fabric.lease.heartbeat_age", at=at, track="fabric",
            seconds=round(age, 6),
        )

    def _tick(self) -> bool:
        """One heartbeat: emit the age sample, renew unless stalled.

        Returns True when the lease is lost and the pump must die.
        """
        self._emit_age()
        if self.manager.clock() < self.stall_until:
            return False  # chaos: pretend the worker froze mid-heartbeat
        try:
            self.lease = self.manager.renew(self.lease)
            self.renewals += 1
        except LeaseLost:
            self.lost = True
            return True
        except OSError:
            pass  # transient share hiccup; retry next tick
        return False

    def run(self) -> None:
        # Tick once immediately: the lease's heartbeat trail starts when
        # execution starts, so even a cell that completes in under one
        # interval (the batched replay core makes that the common case)
        # leaves a renewal and an age sample behind for observers.
        if self._tick():
            return
        while not self._halt.wait(self.interval):
            if self._tick():
                return
        self._emit_age()

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)


class FabricWorker:
    """One drain participant over a shared cache + lease directory.

    Parameters
    ----------
    spec:
        The sweep to drain (a :class:`repro.fabric.coordinator.SwarmSpec`
        or anything with its ``benchmarks/schemes/machine_config/
        references/seed`` surface).
    owner:
        Identity recorded in leases and the manifest; defaults to
        ``<host>:<pid>``.
    policy, chaos, tracer, registry:
        Pacing knobs, a :class:`repro.faults.orchestration.FabricChaos`
        (or None), an :class:`~repro.telemetry.events.EventTracer` for
        the heartbeat-age track, and a metrics registry for counters.
    clock:
        Time source, skewable by chaos (leases compare wall clocks).
    """

    def __init__(
        self,
        spec,
        owner: str | None = None,
        policy: FabricPolicy | None = None,
        chaos=None,
        tracer=None,
        registry=None,
        clock=time.time,
    ):
        self.spec = spec
        self.policy = policy or FabricPolicy()
        self.chaos = chaos
        self.tracer = tracer
        self.registry = registry
        self.owner = owner or f"{os.uname().nodename}:{os.getpid()}"
        skew = 0.0
        if chaos is not None:
            skew = chaos.clock_skew_for(self.owner)
        self.clock = (lambda base=clock, s=skew: base() + s) if skew else clock
        self.stats = FabricStats()
        self.results: dict[int, object] = {}   # index -> CellResult (local)
        disk = result_cache.default_cache()
        self.disk = disk
        self.key = sweep_key(
            list(spec.benchmarks), list(spec.schemes),
            spec.machine_config, spec.references, spec.seed,
        )
        self.lease = LeaseManager(
            lease_root(disk.root, self.key),
            owner=self.owner,
            ttl_seconds=self.policy.ttl_seconds,
            clock=self.clock,
        )
        self._epoch = time.monotonic()

    # -- status beacon ---------------------------------------------------------

    def _beacon(self, state: str) -> None:
        """Publish this worker's liveness row for ``repro swarm status``."""
        try:
            atomic_write_json(
                self.lease.root / "workers" / f"{self.owner.replace('/', '_')}.json",
                {
                    "owner": self.owner,
                    "pid": os.getpid(),
                    "state": state,
                    "updated": self.clock(),
                    "stats": self.stats.as_dict(),
                    "leases": self.lease.stats.as_dict(),
                },
                sort_keys=True,
            )
        except OSError as error:
            # Liveness reporting must never take the drain down, but a
            # beacon that silently stops updating looks like a dead
            # worker to every observer — say why it stopped.
            _LOG.warning(
                "worker beacon write failed",
                owner=self.owner, state=state, error=str(error),
            )

    # -- the drain loop --------------------------------------------------------

    def drain(self) -> FabricStats:
        """Drain the sweep until every cell is journaled ``done``.

        Returns this worker's stats; raises :class:`LeaseDirUnavailable`
        when the lease directory cannot be created or written (callers
        degrade to supervised single-host mode), :class:`DrainStalled`
        when nothing progresses within ``drain_timeout_seconds``.
        """
        try:
            self.lease.root.mkdir(parents=True, exist_ok=True)
            probe = self.lease.root / f".probe.{self.owner.replace('/', '_')}"
            probe.write_text(str(os.getpid()))
            probe.unlink()
        except OSError as err:
            _LOG.error(
                "lease directory unusable; degrading to single-host mode",
                owner=self.owner, lease_root=str(self.lease.root),
                error=str(err),
            )
            raise LeaseDirUnavailable(
                f"lease directory {self.lease.root} unusable: {err}"
            ) from err

        cells = grid_cells(
            list(self.spec.benchmarks), list(self.spec.schemes),
            self.spec.machine_config, self.spec.references, self.spec.seed,
        )
        manifest = SweepManifest.open(
            manifest_path(self.disk.root, self.key), meta=self.spec.meta()
        )
        deadline = time.monotonic() + self.policy.drain_timeout_seconds
        backoff = self.policy.claim_backoff_seconds
        self._beacon("draining")
        try:
            while True:
                manifest.refresh()
                pending = []
                for index, (benchmark, spec, cell_key) in enumerate(cells):
                    if cell_key in manifest.done:
                        # A done event is a claim; believe it only if the
                        # entry still verifies (stale manifests happen).
                        if verified_done_cell(self.disk, cell_key) is not None:
                            continue
                    pending.append((index, benchmark, spec, cell_key))
                if not pending:
                    break
                if time.monotonic() > deadline:
                    _LOG.error(
                        "drain stalled: no progress before the deadline",
                        owner=self.owner, pending=len(pending),
                        timeout_seconds=self.policy.drain_timeout_seconds,
                    )
                    raise DrainStalled(
                        f"{len(pending)} cell(s) still pending after "
                        f"{self.policy.drain_timeout_seconds:.0f}s"
                    )
                self.stats.passes += 1
                progressed = False
                for index, benchmark, spec, cell_key in pending:
                    lease = self.lease.try_acquire(cell_key)
                    if lease is None:
                        continue
                    progressed = True
                    self._run_leased_cell(
                        manifest, lease, index, benchmark, spec, cell_key
                    )
                    self._beacon("draining")
                if progressed:
                    backoff = self.policy.claim_backoff_seconds
                else:
                    # Every pending cell is leased by a live peer: wait for
                    # their done events (or their TTLs) with capped backoff.
                    time.sleep(backoff)
                    backoff = min(
                        backoff * self.policy.claim_backoff_multiplier,
                        self.policy.claim_backoff_cap_seconds,
                    )
        finally:
            self.stats.heartbeats = self.lease.stats.renewals
            self.stats.lease_lost = self.lease.stats.lost
            if self.registry is not None:
                self.stats.publish(self.registry)
                self.lease.stats.publish(self.registry)
                self.registry.gauge("fabric.lease.heartbeat_age").set(0.0)
            self._beacon("finished")
        return self.stats

    # -- one cell --------------------------------------------------------------

    def _run_leased_cell(
        self, manifest, lease: Lease, index, benchmark, spec, cell_key
    ) -> None:
        cell_name = f"{benchmark}/{spec.name}"
        action, seconds = (None, 0.0)
        if self.chaos is not None:
            planned = self.chaos.action_for(self.owner, cell_key)
            if planned is not None:
                action, seconds = planned
        manifest.record(
            "start", cell_key, cell_name,
            owner=self.owner, token=lease.token,
            chaos=action,
        )
        if action == "kill":
            # Die mid-lease, heartbeat and all: a peer must take over
            # after the TTL.  The exit code is recognizable in waitpid.
            os._exit(CHAOS_KILL_EXIT)
        if action == "torn":
            # Tear our own lease file: peers must detect the corruption
            # (digest) and treat the lease as up for takeover.
            path = self.lease._lease_path(cell_key)
            data = path.read_bytes()
            path.write_bytes(data[: max(1, len(data) // 2)])
        if action == "dup":
            # A confused peer (clock far ahead) double-claims our cell:
            # our lease is stolen mid-flight and our store must fence out.
            phantom = LeaseManager(
                self.lease.root,
                owner=f"{self.owner}!dup",
                ttl_seconds=self.policy.ttl_seconds,
                clock=lambda: self.clock() + self.policy.ttl_seconds * 4,
            )
            stolen = phantom.try_acquire(cell_key)
            if stolen is not None:
                phantom.release(stolen)

        pump = _HeartbeatPump(
            self.lease, lease,
            interval=self.policy.heartbeat_interval,
            tracer=self.tracer, epoch=self._epoch,
            stall_seconds=seconds if action == "stall" else 0.0,
        )
        pump.start()
        try:
            cached = self.disk.lookup_cell(cell_key)
            if cached is not None:
                metrics, snapshot = cached
                cell = CellResult(metrics=metrics, snapshot=snapshot)
                self.stats.cells_cache_hits += 1
                stored = True
            else:
                # Share the scheme-independent miss trace across workers
                # through the trace tier, then compute with the result
                # cache bypassed: the store below must go through the
                # fencing check, never behind our back.
                get_miss_trace(
                    benchmark, self.spec.machine_config,
                    self.spec.references, self.spec.seed, use_cache=True,
                )
                cell = run_cell(
                    benchmark, spec,
                    machine=self.spec.machine_config,
                    references=self.spec.references,
                    seed=self.spec.seed,
                    use_cache=False,
                )
                self.stats.cells_executed += 1
                stored = self.disk.store_result(
                    cell_key, cell.metrics, cell.snapshot,
                    fence=self.lease.fence(pump.lease),
                )
                if stored:
                    self.lease.journal_store(pump.lease)
        finally:
            pump.stop()
        if not stored or pump.lost or not self.lease.fence_ok(pump.lease):
            # Zombie path: the lease moved on while we computed.  The new
            # owner recomputes and journals; we record nothing.
            self.stats.cells_fenced_out += 1
            _LOG.warning(
                "cell fenced out: lease moved on during computation",
                owner=self.owner, cell=cell_name, key=cell_key,
                lease_token=lease.token, lease_lost=pump.lost,
                store_refused=not stored,
            )
            return
        if cached is None:
            self.stats.stores += 1
        self.results[index] = cell
        manifest.record(
            "done", cell_key, cell_name,
            source="fabric", owner=self.owner, token=lease.token,
        )
        self.lease.release(pump.lease)
