"""repro — Counter-mode secure memory with OTP prediction and precomputation.

A full-system reproduction of *"High Efficiency Counter Mode Security
Architecture via Prediction and Precomputation"* (ISCA 2005): from-scratch
crypto, cache/DRAM substrates, the secure memory controller with every
prediction scheme the paper evaluates, SPEC2000-like workload models, and a
harness regenerating each table and figure.

Quick tour::

    from repro.secure import SecureMemory
    mem = SecureMemory(key=bytes(32))
    mem.store(0x1000, b"attack at dawn".ljust(32, b"\\x00"))
    mem.load(0x1000, 32)

    from repro.experiments import run_scheme
    metrics = run_scheme("swim", "pred_context")
    print(metrics.prediction_rate)
"""

from repro.secure import (
    ContextOtpPredictor,
    RegularOtpPredictor,
    SecureMemory,
    SecureMemoryController,
    SequenceNumberCache,
    TwoLevelOtpPredictor,
)

__version__ = "1.0.0"

__all__ = [
    "SecureMemory",
    "SecureMemoryController",
    "SequenceNumberCache",
    "RegularOtpPredictor",
    "TwoLevelOtpPredictor",
    "ContextOtpPredictor",
    "__version__",
]
