"""Crash-safe artifact writes shared by every JSON/JSONL producer.

A ``repro`` invocation killed mid-write (Ctrl-C during ``--emit-metrics``,
an OOM-killed bench run, a supervised worker terminated by its parent)
must never leave a *truncated* artifact behind — a half-written
``BENCH_perf.json`` that parses as garbage is strictly worse than no file.
Everything here follows the same discipline as the result cache's entry
writes: stage the full payload in a temp file in the destination
directory, then :func:`os.replace` it into place, which is atomic on every
platform we care about.  Readers see either the previous complete artifact
or the new complete artifact, never a torn one.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = ["atomic_write_bytes", "atomic_write_text", "atomic_write_json"]


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Write ``data`` to ``path`` via a same-directory temp file + rename."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
    try:
        tmp.write_bytes(data)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Atomic counterpart of ``Path.write_text`` (UTF-8)."""
    return atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: str | Path, payload, **dump_kwargs) -> Path:
    """Serialize ``payload`` as JSON and write it atomically.

    ``dump_kwargs`` pass straight to :func:`json.dumps` (``indent``,
    ``sort_keys``, ...).  A trailing newline is always appended so the
    artifacts stay friendly to line-oriented tools.
    """
    return atomic_write_text(path, json.dumps(payload, **dump_kwargs) + "\n")
