"""Integrity substrate: per-line MACs under a Merkle hash tree.

Counter mode provides privacy but no integrity (Section 2.1): "an additional
measure such as message authentication code (MAC) should be used", and the
architecture assumes a Hash/MAC tree [21] alongside encryption
(Section 2.2's assumption list).  This module supplies that assumed
substrate so the reproduced system is complete:

* each cache line gets a MAC over ``(address, seqnum, ciphertext)``;
* MACs are leaves of an arity-``k`` Merkle tree whose interior nodes live in
  *untrusted* memory, with only the root digest held on-chip;
* fetch verification recomputes the leaf and walks to the root using the
  stored (untrusted) siblings — any tampering with data, counters, MACs or
  interior nodes diverges from the trusted root.

Verification is functional-only; the paper's timing evaluation models
encryption latency and treats integrity as an orthogonal cost.
"""

from __future__ import annotations

from repro.crypto.mac import HmacSha256
from repro.crypto.sha256 import sha256
from repro.memory.address import AddressMap, DEFAULT_ADDRESS_MAP
from repro.secure.errors import (
    IntegrityError,
    ReplayDetectedError,
    TamperDetectedError,
)

__all__ = [
    "IntegrityError",
    "TamperDetectedError",
    "ReplayDetectedError",
    "IntegrityTree",
    "FlatMacStore",
]


class FlatMacStore:
    """Per-line MACs *without* a tree — the cheaper, weaker alternative.

    A flat MAC over ``(address, seqnum, ciphertext)`` authenticates data
    and binds it to its location and counter, but because the MACs
    themselves live in untrusted memory, an adversary can replay a
    *consistent old triple* (old ciphertext + old counter + old MAC) and
    pass verification.  Only a tree rooted on-chip (:class:`IntegrityTree`)
    stops that — the distinction the threat tests demonstrate.
    """

    def __init__(self, key: bytes, address_map: AddressMap = DEFAULT_ADDRESS_MAP):
        self.address_map = address_map
        self._mac = HmacSha256(key)
        self.macs: dict[int, bytes] = {}  # untrusted storage
        self.verifications = 0
        self.updates = 0

    def _tag(self, line_address: int, seqnum: int, ciphertext: bytes) -> bytes:
        message = (
            line_address.to_bytes(8, "big")
            + seqnum.to_bytes(8, "big")
            + ciphertext
        )
        return self._mac.tag(message)

    def update(self, line_address: int, seqnum: int, ciphertext: bytes) -> None:
        """Refresh the line's MAC after a write-back."""
        self.updates += 1
        line = self.address_map.line_address(line_address)
        self.macs[line] = self._tag(line, seqnum, ciphertext)

    def verify(self, line_address: int, seqnum: int, ciphertext: bytes) -> None:
        """Check the stored MAC; raises :class:`IntegrityError` on mismatch."""
        self.verifications += 1
        line = self.address_map.line_address(line_address)
        stored = self.macs.get(line)
        if stored is None or stored != self._tag(line, seqnum, ciphertext):
            raise TamperDetectedError(
                f"MAC mismatch for line {line:#x} (seqnum {seqnum})",
                line_address=line,
                seqnum=seqnum,
            )


class IntegrityTree:
    """Sparse Merkle tree over per-line MACs.

    Parameters
    ----------
    key:
        MAC key (held in the protected domain).
    address_bits:
        Width of the byte-address space covered (tree height derives from
        it; 32 bits and 32-byte lines give 27 leaf bits -> 14 levels at
        arity 4).
    arity:
        Children per interior node (power of two).
    """

    def __init__(
        self,
        key: bytes,
        address_bits: int = 32,
        arity: int = 4,
        address_map: AddressMap = DEFAULT_ADDRESS_MAP,
    ):
        if arity < 2 or arity & (arity - 1):
            raise ValueError(f"arity must be a power of two >= 2, got {arity}")
        self.address_map = address_map
        self.arity = arity
        self._mac = HmacSha256(key)
        leaf_bits = address_bits - address_map.line_shift
        arity_bits = arity.bit_length() - 1
        self.levels = max(1, -(-leaf_bits // arity_bits))
        self._arity_bits = arity_bits
        # Untrusted storage: {(level, index): digest}.  Level 0 = leaves.
        self.nodes: dict[tuple[int, int], bytes] = {}
        self._empty = [sha256(b"repro-empty-leaf")]
        for level in range(1, self.levels + 1):
            self._empty.append(sha256(self._empty[-1] * arity))
        self._root = self._empty[self.levels]
        self.verifications = 0
        self.updates = 0

    @property
    def root(self) -> bytes:
        """The on-chip (trusted) root digest."""
        return self._root

    def _leaf_value(self, line_address: int, seqnum: int, ciphertext: bytes) -> bytes:
        message = (
            line_address.to_bytes(8, "big")
            + seqnum.to_bytes(8, "big")
            + ciphertext
        )
        return self._mac.tag(message)

    def _node(self, level: int, index: int) -> bytes:
        return self.nodes.get((level, index), self._empty[level])

    def _parent_digest(self, level: int, parent_index: int) -> bytes:
        first_child = parent_index << self._arity_bits
        payload = b"".join(
            self._node(level, first_child + i) for i in range(self.arity)
        )
        return sha256(payload)

    def update(self, line_address: int, seqnum: int, ciphertext: bytes) -> None:
        """Write-back path: refresh the line's leaf and the path to the root."""
        self.updates += 1
        index = self.address_map.line_index(line_address)
        self.nodes[(0, index)] = self._leaf_value(line_address, seqnum, ciphertext)
        for level in range(1, self.levels + 1):
            index >>= self._arity_bits
            self.nodes[(level, index)] = self._parent_digest(level - 1, index)
        self._root = self.nodes[(self.levels, 0)]

    def verify(self, line_address: int, seqnum: int, ciphertext: bytes) -> None:
        """Fetch path: authenticate a line against the trusted root.

        Recomputes the leaf from the fetched (untrusted) data and hashes up
        the path using stored (untrusted) siblings; raises a subclass of
        :class:`IntegrityError` unless the result matches the on-chip root.
        The failure mode is classified: a mismatch between the fetched data
        and stored nodes is :class:`TamperDetectedError`; a path that is
        internally consistent but no longer reaches the on-chip root means
        every untrusted byte was rolled back together —
        :class:`ReplayDetectedError`.
        """
        self.verifications += 1
        index = self.address_map.line_index(line_address)
        digest = self._leaf_value(line_address, seqnum, ciphertext)
        stored_leaf = self._node(0, index)
        if digest != stored_leaf:
            raise TamperDetectedError(
                f"leaf MAC mismatch for line {line_address:#x} (seqnum {seqnum})",
                line_address=line_address,
                seqnum=seqnum,
            )
        for level in range(1, self.levels + 1):
            index >>= self._arity_bits
            digest = self._parent_digest(level - 1, index)
            if digest != self._node(level, index):
                raise TamperDetectedError(
                    f"hash-tree mismatch at level {level} for line {line_address:#x}",
                    line_address=line_address,
                    seqnum=seqnum,
                    level=level,
                )
        if digest != self._root:
            raise ReplayDetectedError(
                f"root mismatch for line {line_address:#x}: a consistent stale "
                f"state was replayed",
                line_address=line_address,
                seqnum=seqnum,
                level=self.levels,
            )

    def tamper_node(self, level: int, index: int, new_digest: bytes) -> None:
        """Adversarially overwrite an interior node (threat-model tests)."""
        self.nodes[(level, index)] = bytes(new_digest)
