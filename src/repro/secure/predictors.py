"""OTP sequence-number predictors (Sections 3 and 7 of the paper).

Four schemes share one interface:

* :class:`RegularOtpPredictor` — guesses ``root .. root+depth`` (Section 3.1),
  optionally with the adaptive PHV/reset mechanism (Section 3.2) and the
  old-root history memoization (Section 7.3).
* :class:`TwoLevelOtpPredictor` — a per-line range predictor narrows the
  guess window to one bucket of the distance space before regular
  prediction probes inside it (Section 7.2).
* :class:`ContextOtpPredictor` — adds guesses around the Latest Offset
  Register, the offset of the most recent memory fetch (Section 7.4).
* :class:`NullPredictor` — the no-speculation baseline.

A predictor converts protected per-page state into an *ordered* list of
sequence-number guesses; the secure controller pushes those through the
idle crypto-engine pipeline.  Predictors also observe fetch outcomes (to
train PHV/LOR state) and write-backs (to train range tables).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.memory.address import AddressMap, DEFAULT_ADDRESS_MAP
from repro.secure.seqnum import (
    DISTANCE_WINDOW,
    PageSecurityTable,
    seqnum_distance,
)

__all__ = [
    "PredictorStats",
    "OtpPredictor",
    "NullPredictor",
    "RegularOtpPredictor",
    "TwoLevelOtpPredictor",
    "ContextOtpPredictor",
    "RangePredictionTable",
]

_MASK64 = (1 << 64) - 1


@dataclass
class PredictorStats:
    """Aggregate predictor behaviour over a run."""

    lookups: int = 0
    hits: int = 0
    guesses_issued: int = 0
    root_resets: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def guesses_per_lookup(self) -> float:
        return self.guesses_issued / self.lookups if self.lookups else 0.0

    def absorb(
        self,
        lookups: int = 0,
        hits: int = 0,
        guesses_issued: int = 0,
        root_resets: int = 0,
    ) -> None:
        """Fold a batch of predictions into the counters.

        Batch entry point for the batched replay core, which accumulates
        per-epoch deltas instead of bumping these fields per lookup.
        """
        self.lookups += lookups
        self.hits += hits
        self.guesses_issued += guesses_issued
        self.root_resets += root_resets

    def publish(self, registry, prefix: str = "secure.predictor") -> None:
        """Export these counters into a telemetry registry under ``prefix``."""
        registry.counter(f"{prefix}.lookups").inc(self.lookups)
        registry.counter(f"{prefix}.prediction_hits").inc(self.hits)
        registry.counter(f"{prefix}.guesses_issued").inc(self.guesses_issued)
        registry.counter(f"{prefix}.root_resets").inc(self.root_resets)
        registry.gauge(f"{prefix}.hit_rate").set(self.hit_rate)
        registry.gauge(f"{prefix}.guesses_per_lookup").set(
            self.guesses_per_lookup
        )


class OtpPredictor:
    """Interface shared by every prediction scheme."""

    name = "abstract"

    def __init__(self, table: PageSecurityTable):
        self.table = table
        self.stats = PredictorStats()

    def predict(self, page: int, line_address: int) -> list[int]:
        """Ordered sequence-number guesses for a missing line."""
        raise NotImplementedError

    def observe_fetch(
        self, page: int, line_address: int, actual_seqnum: int, hit: bool
    ) -> None:
        """Train on the true sequence number once it arrives from memory."""

    def observe_writeback(
        self, page: int, line_address: int, new_seqnum: int
    ) -> None:
        """Train on a dirty eviction's freshly assigned sequence number."""

    def record(self, guesses: list[int], actual_seqnum: int) -> bool:
        """Book-keeping helper: count a lookup and whether it hit."""
        self.stats.lookups += 1
        self.stats.guesses_issued += len(guesses)
        hit = actual_seqnum in guesses
        if hit:
            self.stats.hits += 1
        return hit


class NullPredictor(OtpPredictor):
    """Baseline: never speculates."""

    name = "baseline"

    def predict(self, page: int, line_address: int) -> list[int]:
        return []


class RegularOtpPredictor(OtpPredictor):
    """Regular (and adaptive) OTP prediction.

    Parameters
    ----------
    depth:
        Prediction depth (Table 1: 5) — guesses cover
        ``[root, root+depth]``, i.e. ``depth+1`` candidates.
    adaptive:
        Enable the PHV-driven root reset of Section 3.2.  The paper's
        evaluated configuration is adaptive; ``False`` isolates the plain
        scheme for ablation.
    use_root_history:
        Also probe from remembered old roots (Section 7.3; requires the
        page table to be built with ``history_depth > 0``).
    """

    name = "regular"

    def __init__(
        self,
        table: PageSecurityTable,
        depth: int = 5,
        adaptive: bool = True,
        use_root_history: bool = False,
    ):
        super().__init__(table)
        if depth < 0:
            raise ValueError(f"depth must be >= 0, got {depth}")
        self.depth = depth
        self.adaptive = adaptive
        self.use_root_history = use_root_history

    def _base_guesses(self, root: int) -> list[int]:
        return [(root + i) & _MASK64 for i in range(self.depth + 1)]

    def predict(self, page: int, line_address: int) -> list[int]:
        state = self.table.state(page)
        guesses = self._base_guesses(state.root)
        if self.use_root_history:
            for old_root in state.old_roots:
                guesses.extend(self._base_guesses(old_root))
        return _dedupe(guesses)

    def observe_fetch(
        self, page: int, line_address: int, actual_seqnum: int, hit: bool
    ) -> None:
        if self.adaptive and self.table.record_prediction(page, hit):
            self.stats.root_resets += 1


class RangePredictionTable:
    """First-level range predictor of the two-level scheme (Section 7.2).

    A 64-entry, LRU-managed table; each entry holds one ``range_bits``-wide
    bucket index per line of a page (4KB pages / 32B lines -> 128 lines,
    so a 4-bit predictor costs 64 bytes per page, ~4KB total — the hardware
    budget quoted in Section 8.1).
    """

    def __init__(
        self,
        entries: int = 64,
        range_bits: int = 4,
        lines_per_page: int = 128,
    ):
        if entries <= 0:
            raise ValueError(f"entries must be positive, got {entries}")
        if not 1 <= range_bits <= 16:
            raise ValueError(f"range_bits must be in [1, 16], got {range_bits}")
        self.entries = entries
        self.range_bits = range_bits
        self.lines_per_page = lines_per_page
        self.max_bucket = (1 << range_bits) - 1
        self._table: OrderedDict[int, list[int]] = OrderedDict()
        self.lookups = 0
        self.misses = 0

    def bucket(self, page: int, line_in_page: int) -> int:
        """Predicted bucket for a line; 0 if the page has no entry."""
        self.lookups += 1
        ranges = self._table.get(page)
        if ranges is None:
            self.misses += 1
            return 0
        self._table.move_to_end(page)
        return ranges[line_in_page]

    def train(self, page: int, line_in_page: int, distance: int, window: int) -> None:
        """Record the bucket of an observed distance.

        Trained on write-backs (Section 7.2) and on fetch outcomes.  A
        freshly allocated page entry is initialized with the observed
        bucket in *every* line slot — the natural hardware reset value,
        and the right prior given that lines of a page tend to share
        update counts (the same observation regular prediction builds on).
        Per-line slots then specialize as further observations arrive.
        """
        bucket = min(distance // window, self.max_bucket)
        ranges = self._table.get(page)
        if ranges is None:
            if len(self._table) >= self.entries:
                self._table.popitem(last=False)
            # A fresh entry is initialized with the observed bucket in every
            # line slot — the natural hardware reset value, and the right
            # prior given that lines of a page tend to share update counts
            # (the same observation regular prediction builds on).  Per-line
            # slots then specialize as further observations arrive.
            ranges = [bucket] * self.lines_per_page
            self._table[page] = ranges
        else:
            self._table.move_to_end(page)
            ranges[line_in_page] = bucket

    def invalidate_page(self, page: int) -> None:
        """Drop a page's ranges (after a root reset rebases distances)."""
        self._table.pop(page, None)

    @property
    def storage_bits(self) -> int:
        """Hardware cost of the table in bits."""
        return self.entries * self.lines_per_page * self.range_bits


class TwoLevelOtpPredictor(RegularOtpPredictor):
    """Two-level prediction: range predictor + regular prediction.

    The range table quadruples (with 2-bit buckets; more with 4-bit) the
    effective prediction depth without issuing more guesses per miss: the
    second-level probes ``[root + bucket*window, root + bucket*window + depth]``.
    """

    name = "two_level"

    def __init__(
        self,
        table: PageSecurityTable,
        depth: int = 5,
        adaptive: bool = True,
        use_root_history: bool = False,
        range_table: RangePredictionTable | None = None,
        address_map: AddressMap = DEFAULT_ADDRESS_MAP,
    ):
        super().__init__(
            table, depth=depth, adaptive=adaptive, use_root_history=use_root_history
        )
        self.address_map = address_map
        self.range_table = range_table or RangePredictionTable(
            lines_per_page=address_map.lines_per_page
        )

    @property
    def window(self) -> int:
        """Width of one range bucket in sequence-number space."""
        return self.depth + 1

    def predict(self, page: int, line_address: int) -> list[int]:
        state = self.table.state(page)
        line_in_page = self.address_map.line_in_page(line_address)
        bucket = self.range_table.bucket(page, line_in_page)
        base = (state.root + bucket * self.window) & _MASK64
        guesses = [(base + i) & _MASK64 for i in range(self.window)]
        if bucket:
            # Lines can sit just below the trained bucket after a re-fetch
            # that precedes the next write-back; always cover the root
            # bucket's first guess as a cheap fallback.
            guesses.append(state.root)
        if self.use_root_history:
            for old_root in state.old_roots:
                guesses.extend(self._base_guesses(old_root))
        return _dedupe(guesses)

    def observe_fetch(
        self, page: int, line_address: int, actual_seqnum: int, hit: bool
    ) -> None:
        root_before = self.table.state(page).root
        super().observe_fetch(page, line_address, actual_seqnum, hit)
        state = self.table.state(page)
        if state.root != root_before:
            # Root reset rebased every distance in the page; stale buckets
            # would now point at the wrong part of sequence space.
            self.range_table.invalidate_page(page)
            return
        # Train on the observed distance as well as on write-backs: the
        # fetched sequence number is already on-chip (it just arrived), and
        # learning from it means a line mispredicts at most once before its
        # bucket is correct.
        distance = seqnum_distance(actual_seqnum, state.root)
        if distance < DISTANCE_WINDOW:
            line_in_page = self.address_map.line_in_page(line_address)
            self.range_table.train(page, line_in_page, distance, self.window)

    def observe_writeback(
        self, page: int, line_address: int, new_seqnum: int
    ) -> None:
        state = self.table.state(page)
        distance = seqnum_distance(new_seqnum, state.root)
        if distance < DISTANCE_WINDOW:
            line_in_page = self.address_map.line_in_page(line_address)
            self.range_table.train(page, line_in_page, distance, self.window)


class ContextOtpPredictor(RegularOtpPredictor):
    """Context-based prediction with a Latest Offset Register (Section 7.4).

    Two guess sets per miss: the regular set ``[root, root+depth]`` and a
    swing of ``2*pred_swing + 1`` guesses centred on ``root + LOR`` (clamped
    at the root), where LOR is the offset of the most recent fetch.  Costs
    one register, no tables.
    """

    name = "context"

    def __init__(
        self,
        table: PageSecurityTable,
        depth: int = 5,
        swing: int = 3,
        adaptive: bool = True,
        use_root_history: bool = False,
    ):
        super().__init__(
            table, depth=depth, adaptive=adaptive, use_root_history=use_root_history
        )
        if swing < 0:
            raise ValueError(f"swing must be >= 0, got {swing}")
        self.swing = swing
        self.latest_offset = 0

    def predict(self, page: int, line_address: int) -> list[int]:
        state = self.table.state(page)
        guesses = self._base_guesses(state.root)
        low = max(self.latest_offset - self.swing, 0)
        high = self.latest_offset + self.swing
        guesses.extend((state.root + off) & _MASK64 for off in range(low, high + 1))
        if self.use_root_history:
            for old_root in state.old_roots:
                guesses.extend(self._base_guesses(old_root))
        return _dedupe(guesses)

    def observe_fetch(
        self, page: int, line_address: int, actual_seqnum: int, hit: bool
    ) -> None:
        state = self.table.state(page)
        distance = seqnum_distance(actual_seqnum, state.root)
        if distance < DISTANCE_WINDOW:
            self.latest_offset = distance
        super().observe_fetch(page, line_address, actual_seqnum, hit)


def _dedupe(guesses: list[int]) -> list[int]:
    """Drop duplicate guesses, keeping first-occurrence (priority) order."""
    seen: set[int] = set()
    unique = []
    for guess in guesses:
        if guess not in seen:
            seen.add(guess)
            unique.append(guess)
    return unique
