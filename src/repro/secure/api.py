"""High-level sealed-memory facade over the secure controller.

:class:`SecureMemory` is the friendly entry point for applications that just
want counter-mode-protected storage with integrity: ``store`` encrypts a
line-aligned buffer out to untrusted RAM (advancing counters exactly as the
hardware write-back path would), ``load`` fetches and decrypts it (with the
same prediction machinery deciding how much latency a real processor would
have exposed).

The quickstart and sealed-storage examples are built on this class; the
cycle-accurate experiments use :class:`repro.cpu.system.SecureSystem`
directly.
"""

from __future__ import annotations

from repro.memory.address import AddressMap, DEFAULT_ADDRESS_MAP
from repro.secure.controller import FetchResult, SecureMemoryController
from repro.secure.predictors import ContextOtpPredictor, OtpPredictor
from repro.secure.seqnum import PageSecurityTable

__all__ = ["SecureMemory"]


class SecureMemory:
    """Line-granular encrypted memory with transparent counter management.

    Parameters
    ----------
    key:
        Process encryption key (16/24/32 bytes).
    predictor_factory:
        Callable building the OTP predictor from the page table; defaults to
        the paper's best scheme (context-based prediction).
    integrity:
        Attach the Merkle MAC tree; tampering then raises
        :class:`repro.secure.integrity.IntegrityError` on load.
    """

    def __init__(
        self,
        key: bytes,
        predictor_factory=None,
        integrity: bool = True,
        address_map: AddressMap = DEFAULT_ADDRESS_MAP,
    ):
        page_table = PageSecurityTable()
        if predictor_factory is None:
            predictor: OtpPredictor = ContextOtpPredictor(page_table)
        else:
            predictor = predictor_factory(page_table)
        self.controller = SecureMemoryController(
            page_table=page_table,
            predictor=predictor,
            key=key,
            integrity=integrity,
            address_map=address_map,
        )
        self.address_map = address_map
        self._clock = 0

    @property
    def clock(self) -> int:
        """Current simulated cycle (advanced by every operation)."""
        return self._clock

    def store(self, address: int, data: bytes) -> None:
        """Encrypt ``data`` (any multiple of the line size) out to RAM."""
        line_bytes = self.address_map.line_bytes
        if address % line_bytes:
            raise ValueError(f"address must be {line_bytes}-byte aligned")
        if not data or len(data) % line_bytes:
            raise ValueError(f"data length must be a positive multiple of {line_bytes}")
        for offset in range(0, len(data), line_bytes):
            result = self.controller.writeback_line(
                self._clock, address + offset, data[offset: offset + line_bytes]
            )
            self._clock = result.completion_time

    def load(self, address: int, length: int) -> bytes:
        """Fetch and decrypt ``length`` bytes (line-aligned, line-multiple)."""
        line_bytes = self.address_map.line_bytes
        if address % line_bytes:
            raise ValueError(f"address must be {line_bytes}-byte aligned")
        if length <= 0 or length % line_bytes:
            raise ValueError(f"length must be a positive multiple of {line_bytes}")
        chunks = []
        for offset in range(0, length, line_bytes):
            result = self.load_line(address + offset)
            chunks.append(result.plaintext)
        return b"".join(chunks)

    def load_line(self, address: int) -> FetchResult:
        """Fetch one line, returning full timing detail with the plaintext."""
        result = self.controller.fetch_line(self._clock, address)
        self._clock = result.data_ready
        return result

    @property
    def prediction_rate(self) -> float:
        """Fraction of loads whose sequence number was predicted."""
        return self.controller.predictor.stats.hit_rate
