"""Security self-checks for the counter-mode architecture (Section 4).

Counter mode is only secure while no ``(address, sequence number)`` pair is
ever reused to *encrypt* two different values — pad reuse leaks the XOR of
the plaintexts.  The architecture guarantees freshness by construction
(increment on write-back, random re-rooting); :class:`PadReuseAuditor`
verifies that claim dynamically by watching every seal operation the secure
controller performs.

The module also provides small analytic probes used by the security tests
and the attack-simulation example: pad uniqueness across addresses sharing
a sequence number (the Section 4 argument) and a ciphertext-malleability
demonstration motivating the integrity tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.ctr import xor_bytes
from repro.secure.errors import SecureMemoryError
from repro.secure.otp import OtpGenerator

__all__ = ["PadReuseError", "PadReuseAuditor", "pads_are_unique", "malleability_demo"]


class PadReuseError(SecureMemoryError):
    """A (address, seqnum) pad was used to encrypt twice — security violation."""


@dataclass
class PadReuseAuditor:
    """Records every encryption pad the system consumes and flags reuse."""

    strict: bool = True
    seals: int = 0
    reuses: int = 0
    _used: set[tuple[int, int]] = field(default_factory=set)

    def on_seal(self, line_address: int, seqnum: int) -> None:
        """Called by the controller whenever a line is encrypted."""
        self.seals += 1
        pair = (line_address, seqnum)
        if pair in self._used:
            self.reuses += 1
            if self.strict:
                raise PadReuseError(
                    f"pad (addr={line_address:#x}, seq={seqnum}) reused for encryption"
                )
        self._used.add(pair)

    @property
    def clean(self) -> bool:
        """True while no pad reuse has been observed."""
        return self.reuses == 0


def pads_are_unique(key: bytes, addresses: list[int], seqnum: int) -> bool:
    """Section 4's argument, checked concretely.

    Different memory blocks of the same page may share a sequence number;
    because the address is part of the AES input, their pads must still all
    differ.  Returns True when every pad for ``addresses`` at ``seqnum`` is
    distinct.
    """
    generator = OtpGenerator(key)
    pads = [generator.pad(address, seqnum) for address in addresses]
    return len(set(pads)) == len(pads)


def malleability_demo(key: bytes, line_address: int, seqnum: int, plaintext: bytes) -> bytes:
    """Flip one plaintext bit through the ciphertext without knowing the key.

    Demonstrates why counter mode needs the integrity tree: XORing a mask
    into the ciphertext XORs the same mask into the decrypted plaintext.
    Returns the plaintext an unsuspecting processor would decrypt after the
    attack (differs from ``plaintext`` in exactly the flipped bit).
    """
    generator = OtpGenerator(key, line_bytes=len(plaintext))
    ciphertext = generator.seal(line_address, seqnum, plaintext)
    mask = b"\x01" + bytes(len(plaintext) - 1)
    tampered = xor_bytes(ciphertext, mask)
    return generator.open(line_address, seqnum, tampered)
