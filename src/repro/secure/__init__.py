"""The paper's contribution: counter-mode security with OTP prediction.

Public surface:

* :class:`~repro.secure.api.SecureMemory` — sealed encrypted memory for
  applications.
* :class:`~repro.secure.controller.SecureMemoryController` — the
  architectural model (fetch/write-back paths, timing + functional modes).
* Predictors (:mod:`repro.secure.predictors`) — regular/adaptive, two-level,
  context-based.
* :class:`~repro.secure.seqcache.SequenceNumberCache` — the prior-art
  baseline the paper compares against.
* :class:`~repro.secure.integrity.IntegrityTree` and
  :mod:`repro.secure.threat` — the assumed integrity substrate and security
  self-checks.
"""

from repro.secure.api import SecureMemory
from repro.secure.controller import (
    ControllerStats,
    FetchClass,
    FetchResult,
    RecoveryPolicy,
    ResilienceStats,
    SecureMemoryController,
    WritebackResult,
)
from repro.secure.errors import (
    CounterOverflowError,
    FetchFailedError,
    ReplayDetectedError,
    SecureMemoryError,
    TamperDetectedError,
)
from repro.secure.integrity import IntegrityError, IntegrityTree
from repro.secure.direct import DirectEncryptionController
from repro.secure.otp import OtpGenerator, blocks_per_line
from repro.secure.predecrypt import PredecryptingController, PredecryptStats
from repro.secure.process import ProcessContext, SecureProcessManager
from repro.secure.predictors import (
    ContextOtpPredictor,
    NullPredictor,
    OtpPredictor,
    PredictorStats,
    RangePredictionTable,
    RegularOtpPredictor,
    TwoLevelOtpPredictor,
)
from repro.secure.seqcache import SequenceNumberCache
from repro.secure.seqnum import (
    DISTANCE_WINDOW,
    PageSecurityState,
    PageSecurityTable,
    seqnum_distance,
)
from repro.secure.threat import (
    PadReuseAuditor,
    PadReuseError,
    malleability_demo,
    pads_are_unique,
)

__all__ = [
    "SecureMemory",
    "ControllerStats",
    "FetchClass",
    "FetchResult",
    "RecoveryPolicy",
    "ResilienceStats",
    "SecureMemoryController",
    "WritebackResult",
    "SecureMemoryError",
    "CounterOverflowError",
    "FetchFailedError",
    "ReplayDetectedError",
    "TamperDetectedError",
    "IntegrityError",
    "IntegrityTree",
    "DirectEncryptionController",
    "OtpGenerator",
    "blocks_per_line",
    "PredecryptingController",
    "PredecryptStats",
    "ProcessContext",
    "SecureProcessManager",
    "ContextOtpPredictor",
    "NullPredictor",
    "OtpPredictor",
    "PredictorStats",
    "RangePredictionTable",
    "RegularOtpPredictor",
    "TwoLevelOtpPredictor",
    "SequenceNumberCache",
    "DISTANCE_WINDOW",
    "PageSecurityState",
    "PageSecurityTable",
    "seqnum_distance",
    "PadReuseAuditor",
    "PadReuseError",
    "malleability_demo",
    "pads_are_unique",
]
