"""Secure memory controller: the protected-domain boundary of Figure 2.

Every L2 miss and every dirty L2 eviction crosses this controller.  It owns
the whole decryption-latency story the paper is about:

* **fetch** — issue the pipelined (sequence number, encrypted line) DRAM
  read; meanwhile either (a) do nothing (baseline), (b) probe the
  sequence-number cache (prior art), or (c) push speculative pad
  computations for the predictor's guesses through the idle crypto engine
  (this paper).  When the true sequence number lands, a matching guess means
  the pad is already (or nearly) ready and decryption is one XOR.
* **write-back** — advance the line's sequence number (increment, or rebase
  onto the current root after a reset, Section 3.2's distance test),
  generate the fresh pad, encrypt, and update counter + MAC tree in RAM.

The controller runs in one of two modes sharing the identical control path:
*timing-only* (no key) tracks when data would be ready; *functional* (with a
key) additionally performs real AES pad generation, line encryption,
integrity verification, and pad-reuse auditing.
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from dataclasses import dataclass, field

from repro.crypto.engine import CryptoEngine
from repro.memory.address import AddressMap, DEFAULT_ADDRESS_MAP
from repro.memory.backing import BackingStore
from repro.memory.bus import MemoryBus
from repro.memory.dram import Dram
from repro.secure.errors import (
    CounterOverflowError,
    FetchFailedError,
    IntegrityError,
)
from repro.secure.integrity import IntegrityTree
from repro.secure.otp import OtpGenerator, blocks_per_line
from repro.secure.predictors import NullPredictor, OtpPredictor
from repro.secure.seqcache import SequenceNumberCache
from repro.secure.seqnum import PageSecurityTable
from repro.secure.threat import PadReuseAuditor
from repro.telemetry.events import NULL_TRACER
from repro.telemetry.registry import DEFAULT_LATENCY_BOUNDS

__all__ = [
    "FetchClass",
    "FetchResult",
    "WritebackResult",
    "RecoveryPolicy",
    "ResilienceStats",
    "ControllerStats",
    "SecureMemoryController",
]

_MASK64 = (1 << 64) - 1


class FetchClass(enum.Enum):
    """Fig. 9 classification of how a fetch's sequence number was covered."""

    BOTH = "both"              # in the seqnum cache AND predictable
    PRED_ONLY = "pred_only"    # missed the cache but predicted
    CACHE_ONLY = "cache_only"  # cached but not predictable
    NEITHER = "neither"


@dataclass(frozen=True)
class FetchResult:
    """Timing and (in functional mode) data outcome of one line fetch."""

    address: int
    seqnum: int
    issue_time: int
    seqnum_ready: int
    line_ready: int
    pad_ready: int
    data_ready: int
    predicted: bool
    seqcache_hit: bool
    fetch_class: FetchClass
    plaintext: bytes | None = None

    @property
    def exposed_latency(self) -> int:
        """Cycles from issue until the decrypted line is usable."""
        return self.data_ready - self.issue_time

    @property
    def decryption_overhead(self) -> int:
        """Cycles the crypto path added beyond the raw memory fetch."""
        return self.data_ready - self.line_ready


@dataclass(frozen=True)
class WritebackResult:
    """Outcome of one encrypted write-back."""

    address: int
    seqnum: int
    completion_time: int
    rebased: bool
    reencrypted_page: bool = False    # write-back triggered a page re-encryption


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the controller responds when the pipeline faults.

    Parameters
    ----------
    max_retries:
        Bounded re-fetch attempts after an integrity failure or a dropped
        DRAM response before the fetch is abandoned.
    backoff_base_cycles / backoff_multiplier / backoff_cap_cycles:
        Cycle-modeled exponential backoff: retry *n* waits
        ``base * multiplier**(n-1)`` cycles before re-issuing the fetch,
        clamped to ``backoff_cap_cycles`` when a cap is set (``None``
        leaves the growth unbounded, the historical behavior).
    degrade_after_faults:
        Consecutive unrecovered pipeline faults that trip graceful
        degradation: speculation is disabled and fetches fall back to the
        demand / sequence-number-cache path until
        :meth:`SecureMemoryController.restore_speculation` is called.
    reencrypt_on_overflow:
        Respond to counter saturation by re-encrypting the page under a
        fresh root instead of raising :class:`CounterOverflowError`.
    """

    max_retries: int = 2
    backoff_base_cycles: int = 200
    backoff_multiplier: int = 2
    backoff_cap_cycles: int | None = None
    degrade_after_faults: int = 8
    reencrypt_on_overflow: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_cycles < 0:
            raise ValueError(
                f"backoff_base_cycles must be >= 0, got {self.backoff_base_cycles}"
            )
        if self.backoff_multiplier < 1:
            raise ValueError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if self.backoff_cap_cycles is not None and self.backoff_cap_cycles < 0:
            raise ValueError(
                f"backoff_cap_cycles must be >= 0, got {self.backoff_cap_cycles}"
            )
        if self.degrade_after_faults < 1:
            raise ValueError(
                f"degrade_after_faults must be >= 1, got {self.degrade_after_faults}"
            )

    def backoff_cycles(self, attempt: int) -> int:
        """Backoff before retry ``attempt`` (1-based), clamped to any cap.

        Grown iteratively with an early exit at the cap so huge attempt
        numbers stay cheap — ``multiplier ** attempt`` would build a
        thousands-of-bits integer before the clamp could discard it.
        """
        cap = self.backoff_cap_cycles
        if self.backoff_base_cycles == 0 or self.backoff_multiplier == 1:
            wait = self.backoff_base_cycles
            return wait if cap is None else min(wait, cap)
        wait = self.backoff_base_cycles
        for _ in range(attempt - 1):
            wait *= self.backoff_multiplier
            if cap is not None and wait >= cap:
                return cap
        return wait if cap is None else min(wait, cap)


@dataclass
class ResilienceStats:
    """Fault / recovery counters (part of :class:`ControllerStats`)."""

    integrity_faults: int = 0         # IntegrityError raised by the substrate
    dram_faults: int = 0              # dropped DRAM responses observed
    retries: int = 0                  # re-fetches issued by the policy
    recovered_fetches: int = 0        # fetches that succeeded after >=1 retry
    failed_fetches: int = 0           # fetches abandoned after retry exhaustion
    quarantined_lines: int = 0        # lines moved to the quarantine set
    counter_overflows: int = 0        # saturated counters detected on write-back
    pages_reencrypted: int = 0        # overflow responses under a fresh root
    degrade_events: int = 0           # times speculation was disabled

    def as_dict(self) -> dict[str, int]:
        """Machine-readable snapshot for reports."""
        return {
            "integrity_faults": self.integrity_faults,
            "dram_faults": self.dram_faults,
            "retries": self.retries,
            "recovered_fetches": self.recovered_fetches,
            "failed_fetches": self.failed_fetches,
            "quarantined_lines": self.quarantined_lines,
            "counter_overflows": self.counter_overflows,
            "pages_reencrypted": self.pages_reencrypted,
            "degrade_events": self.degrade_events,
        }


@dataclass
class ControllerStats:
    """Controller-level counters (predictor/cache substructures keep their own)."""

    fetches: int = 0
    writebacks: int = 0
    rebased_writebacks: int = 0
    covered_fetches: int = 0          # pad path overlapped with the fetch
    class_counts: dict = field(
        default_factory=lambda: {kind: 0 for kind in FetchClass}
    )
    total_exposed_latency: int = 0
    total_decryption_overhead: int = 0
    resilience: ResilienceStats = field(default_factory=ResilienceStats)
    # Bucketed exposed-latency distribution (bounds: DEFAULT_LATENCY_BOUNDS
    # plus one overflow bucket), fed by record_fetch_latency.
    exposed_latency_counts: list = field(
        default_factory=lambda: [0] * (len(DEFAULT_LATENCY_BOUNDS) + 1)
    )

    @property
    def coverage(self) -> float:
        """Fraction of fetches whose pad generation overlapped the fetch."""
        return self.covered_fetches / self.fetches if self.fetches else 0.0

    @property
    def mean_exposed_latency(self) -> float:
        """Average cycles from miss issue to usable data."""
        return self.total_exposed_latency / self.fetches if self.fetches else 0.0

    def record_fetch_latency(self, exposed: int, overhead: int) -> None:
        """Accumulate one fetch's latency totals and histogram bucket."""
        self.total_exposed_latency += exposed
        self.total_decryption_overhead += overhead
        self.exposed_latency_counts[
            bisect_right(DEFAULT_LATENCY_BOUNDS, exposed)
        ] += 1

    def absorb(
        self,
        fetches: int = 0,
        writebacks: int = 0,
        rebased_writebacks: int = 0,
        covered_fetches: int = 0,
        class_both: int = 0,
        class_pred_only: int = 0,
        class_cache_only: int = 0,
        class_neither: int = 0,
        exposed_latency: int = 0,
        decryption_overhead: int = 0,
        exposed_latency_counts: list | None = None,
    ) -> None:
        """Fold a batch of fetches/write-backs into the counters.

        Batch entry point for the batched replay core, which accumulates
        per-epoch deltas instead of bumping these fields per reference.
        ``exposed_latency_counts`` must align bucket-for-bucket with this
        object's histogram (``DEFAULT_LATENCY_BOUNDS`` plus overflow).
        """
        self.fetches += fetches
        self.writebacks += writebacks
        self.rebased_writebacks += rebased_writebacks
        self.covered_fetches += covered_fetches
        self.class_counts[FetchClass.BOTH] += class_both
        self.class_counts[FetchClass.PRED_ONLY] += class_pred_only
        self.class_counts[FetchClass.CACHE_ONLY] += class_cache_only
        self.class_counts[FetchClass.NEITHER] += class_neither
        self.total_exposed_latency += exposed_latency
        self.total_decryption_overhead += decryption_overhead
        if exposed_latency_counts is not None:
            counts = self.exposed_latency_counts
            for index, count in enumerate(exposed_latency_counts):
                counts[index] += count

    def publish(self, registry, prefix: str = "secure.controller") -> None:
        """Export these counters into a telemetry registry under ``prefix``."""
        registry.counter(f"{prefix}.fetches").inc(self.fetches)
        registry.counter(f"{prefix}.writebacks").inc(self.writebacks)
        registry.counter(f"{prefix}.rebased_writebacks").inc(
            self.rebased_writebacks
        )
        registry.counter(f"{prefix}.covered_fetches").inc(self.covered_fetches)
        for kind, count in self.class_counts.items():
            registry.counter(f"{prefix}.class.{kind.value}").inc(count)
        registry.counter(f"{prefix}.exposed_latency_cycles").inc(
            self.total_exposed_latency
        )
        registry.counter(f"{prefix}.decryption_overhead_cycles").inc(
            self.total_decryption_overhead
        )
        registry.gauge(f"{prefix}.coverage").set(self.coverage)
        registry.gauge(f"{prefix}.mean_exposed_latency").set(
            self.mean_exposed_latency
        )
        registry.histogram(f"{prefix}.exposed_latency").load(
            self.exposed_latency_counts,
            float(self.total_exposed_latency),
            sum(self.exposed_latency_counts),
        )
        for name, value in self.resilience.as_dict().items():
            registry.counter(f"{prefix}.resilience.{name}").inc(value)


class SecureMemoryController:
    """Counter-mode memory encryption engine-room.

    Parameters
    ----------
    predictor:
        An :class:`~repro.secure.predictors.OtpPredictor`; defaults to the
        never-speculating :class:`~repro.secure.predictors.NullPredictor`.
    seqcache:
        Optional :class:`~repro.secure.seqcache.SequenceNumberCache` (prior
        art); may be combined with a predictor (Section 6.1 / Fig. 9).
    oracle:
        If True, pretend every sequence number is on-chip (the
        normalization target of the IPC figures).
    key:
        Enable functional mode: real AES pads, encryption of line data in
        the backing store, integrity tree, pad-reuse auditing.
    pad_buffer_entries:
        Capacity of the precomputed-pad table of Figure 5, in AES blocks.
        Guess lists that would overflow it are truncated.
    recovery:
        Optional :class:`RecoveryPolicy`.  Without one the controller keeps
        its historical fail-fast behavior (integrity failures and counter
        saturation propagate immediately); with one, faults are retried
        with backoff, persistent offenders are quarantined, and counter
        overflow triggers a page re-encryption.
    tracer:
        Optional :class:`~repro.telemetry.events.EventTracer`; when
        attached, every fetch and write-back emits cycle-stamped spans
        (dram / crypto / controller tracks) for Chrome-trace export.
    """

    def __init__(
        self,
        engine: CryptoEngine | None = None,
        dram: Dram | None = None,
        page_table: PageSecurityTable | None = None,
        predictor: OtpPredictor | None = None,
        seqcache: SequenceNumberCache | None = None,
        oracle: bool = False,
        address_map: AddressMap = DEFAULT_ADDRESS_MAP,
        key: bytes | None = None,
        integrity: bool = False,
        pad_buffer_entries: int = 64,
        backing: BackingStore | None = None,
        recovery: RecoveryPolicy | None = None,
        tracer=None,
    ):
        self.engine = engine if engine is not None else CryptoEngine()
        self.dram = dram if dram is not None else Dram()
        # `is not None` rather than `or`: several of these types define
        # __len__, so freshly built (empty) instances are falsy.
        self.page_table = (
            page_table if page_table is not None else PageSecurityTable()
        )
        self.predictor = (
            predictor if predictor is not None else NullPredictor(self.page_table)
        )
        if self.predictor.table is not self.page_table:
            raise ValueError("predictor must share the controller's page table")
        self.seqcache = seqcache
        self.oracle = oracle
        self.address_map = address_map
        self.backing = backing if backing is not None else BackingStore(address_map)
        self.stats = ControllerStats()
        self.blocks = blocks_per_line(address_map.line_bytes)
        if pad_buffer_entries < self.blocks:
            raise ValueError(
                f"pad buffer must hold at least one line's pads "
                f"({self.blocks} blocks), got {pad_buffer_entries}"
            )
        self.max_guesses = pad_buffer_entries // self.blocks
        self.recovery = recovery
        # Cycle-stamped span sink; the shared null tracer answers
        # ``enabled`` False so the hot path pays one attribute check.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.quarantine: set[int] = set()
        self.degraded = False
        self._consecutive_faults = 0

        self.functional = key is not None
        self.otp: OtpGenerator | None = None
        self.integrity_tree: IntegrityTree | None = None
        self.auditor: PadReuseAuditor | None = None
        if self.functional:
            self.otp = OtpGenerator(key, line_bytes=address_map.line_bytes)
            self.auditor = PadReuseAuditor()
            if integrity:
                # Domain-separate the MAC key from the encryption key.
                self.integrity_tree = IntegrityTree(
                    key + b"integrity", address_map=address_map
                )
        elif integrity:
            raise ValueError("integrity tree requires functional mode (a key)")

    # -- telemetry ---------------------------------------------------------------

    @property
    def tracer(self):
        """The event tracer shared by the whole protected-domain pipeline."""
        return self._tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        # Propagate to the engine and DRAM so their counter tracks (pipeline
        # occupancy, outstanding fetches) land in the same ring buffer; the
        # runner attaches a tracer *after* construction, so this setter is
        # the single attachment point.
        self._tracer = tracer
        self.engine.tracer = tracer
        self.dram.tracer = tracer

    def publish_telemetry(self, registry) -> None:
        """Export the whole protected-domain pipeline into ``registry``.

        One call covers every stat island the controller owns or drives:
        controller counters (with resilience and the exposed-latency
        histogram), crypto engine, predictor, DRAM, and — when present —
        the sequence-number cache and the functional pad memo.
        """
        self.stats.publish(registry)
        self.engine.stats.publish(registry)
        self.predictor.stats.publish(registry)
        self.dram.stats.publish(registry)
        if self.seqcache is not None:
            self.seqcache.publish(registry)
        if self.otp is not None:
            self.otp.pad_cache.stats.publish(registry)

    def batched_replay_supported(self) -> bool:
        """Whether the batched replay core can drive this controller exactly.

        The batched core (:mod:`repro.cpu.engine`) inlines the timing
        arithmetic of this controller and its substrate objects, so it is
        only exact when every one of them is the stock timing-model class
        in its plain state.  Anything it cannot express bit-identically —
        functional crypto, an attached tracer, recovery degradation,
        quarantined lines, fault-injector proxies, subclassed components —
        answers False here and is replayed on the reference path instead.
        A :class:`RecoveryPolicy` by itself is fine: the stock substrate
        never faults, so only the overflow clause can trigger, and the
        batched core delegates saturated write-backs to
        :meth:`writeback_line`.
        """
        return (
            type(self) is SecureMemoryController
            and not self.functional
            and not self.degraded
            and not self.quarantine
            and not self.tracer.enabled
            and type(self.engine) is CryptoEngine
            and type(self.dram) is Dram
            and type(self.dram.bus) is MemoryBus
            and type(self.backing) is BackingStore
            and type(self.page_table) is PageSecurityTable
            and (
                self.seqcache is None
                or type(self.seqcache) is SequenceNumberCache
            )
        )

    # -- sequence-number state -------------------------------------------------

    def current_seqnum(self, line_address: int) -> int:
        """The counter RAM currently holds for this line.

        A line never written back still holds the value installed at page
        mapping: the page's mapping-time root.
        """
        stored = self.backing.read_seqnum(line_address)
        if stored is not None:
            return stored
        page = self.address_map.page_number(line_address)
        return self.page_table.state(page).mapping_root

    # -- resilience --------------------------------------------------------------

    @property
    def resilience(self) -> ResilienceStats:
        """Fault/recovery counters (alias for ``stats.resilience``)."""
        return self.stats.resilience

    def restore_speculation(self) -> None:
        """Re-enable speculation after graceful degradation."""
        self.degraded = False
        self._consecutive_faults = 0

    def _note_fault(self) -> None:
        """Record one unrecovered pipeline fault; maybe trip degradation."""
        self._consecutive_faults += 1
        if (
            self.recovery is not None
            and not self.degraded
            and self._consecutive_faults >= self.recovery.degrade_after_faults
        ):
            self.degraded = True
            self.stats.resilience.degrade_events += 1

    def _note_recovery(self) -> None:
        """A faulting fetch ultimately succeeded."""
        self.stats.resilience.recovered_fetches += 1
        self._consecutive_faults = 0

    def _dram_fetch(self, now: int, line: int):
        """Issue the DRAM round trip, retrying dropped responses.

        Returns ``(timing, attempts_used)``; raises
        :class:`FetchFailedError` once the policy's retry budget is spent
        (or immediately without a policy).
        """
        attempt = 0
        while True:
            try:
                timing = self.dram.fetch_line_with_seqnum(
                    now, line, self.address_map.line_bytes
                )
                return timing, attempt
            except FetchFailedError as err:
                self.stats.resilience.dram_faults += 1
                self._note_fault()
                if self.recovery is None or attempt >= self.recovery.max_retries:
                    self.stats.resilience.failed_fetches += 1
                    raise FetchFailedError(
                        f"line {line:#x}: DRAM response dropped "
                        f"{attempt + 1} time(s)",
                        line_address=line,
                        attempts=attempt + 1,
                        cause=err,
                    ) from err
                attempt += 1
                self.stats.resilience.retries += 1
                now += self.recovery.backoff_cycles(attempt)

    # -- fetch path --------------------------------------------------------------

    def fetch_line(self, now: int, address: int) -> FetchResult:
        """Handle an L2 miss: fetch, (maybe) speculate, decrypt, recover."""
        line = self.address_map.line_address(address)
        if line in self.quarantine:
            raise FetchFailedError(
                f"line {line:#x} is quarantined after repeated integrity "
                f"failures",
                line_address=line,
                attempts=0,
                quarantined=True,
            )
        page = self.address_map.page_number(line)
        timing, dram_retries = self._dram_fetch(now, line)
        actual = self.current_seqnum(line)

        cache_hit = self.seqcache.lookup(line) if self.seqcache else False

        predicted = False
        guesses: list[int] = []
        # Graceful degradation: with speculation disabled the fetch falls
        # back to the demand / sequence-number-cache path.
        if (
            not self.oracle
            and not self.degraded
            and not isinstance(self.predictor, NullPredictor)
        ):
            guesses = self.predictor.predict(page, line)[: self.max_guesses]
            predicted = self.predictor.record(guesses, actual)

        pad_ready = self._schedule_pads(
            now, timing.seqnum_ready, cache_hit, guesses, actual
        )
        if self.functional and guesses and self.otp.memo_enabled:
            # Functional counterpart of the speculative issue slots above:
            # the whole candidate set (depth x blocks per line) goes through
            # one batched AES call and lands in the pad memo, so the decrypt
            # below — and any later fetch whose counter a guess anticipated —
            # reuses precomputed pads instead of re-running the cipher.
            self.otp.pads(line, guesses)

        if not self.oracle:
            self.predictor.observe_fetch(page, line, actual, predicted)
        if self.seqcache and not cache_hit:
            self.seqcache.fill(line)

        data_ready = max(timing.line_ready, pad_ready, timing.seqnum_ready)
        retried = False
        if self.functional:
            plaintext, data_ready, retried = self._decrypt_with_recovery(
                line, actual, data_ready
            )
        else:
            plaintext = None
        if dram_retries or retried:
            self._note_recovery()
        else:
            # A clean fetch breaks any run of consecutive faults.
            self._consecutive_faults = 0

        fetch_class = self._classify(cache_hit, predicted)
        self.stats.fetches += 1
        self.stats.class_counts[fetch_class] += 1
        # "Covered" = pad generation overlapped the fetch instead of
        # serializing behind the sequence number's arrival (Figure 4).
        if pad_ready < timing.seqnum_ready + self.engine.latency:
            self.stats.covered_fetches += 1
        self.stats.record_fetch_latency(
            data_ready - now, data_ready - timing.line_ready
        )
        if self.tracer.enabled:
            self._trace_fetch(
                now, timing, pad_ready, data_ready, line, actual,
                fetch_class, predicted, cache_hit, len(guesses),
            )

        return FetchResult(
            address=line,
            seqnum=actual,
            issue_time=now,
            seqnum_ready=timing.seqnum_ready,
            line_ready=timing.line_ready,
            pad_ready=pad_ready,
            data_ready=data_ready,
            predicted=predicted,
            seqcache_hit=cache_hit,
            fetch_class=fetch_class,
            plaintext=plaintext,
        )

    def _schedule_pads(
        self,
        now: int,
        seqnum_ready: int,
        cache_hit: bool,
        guesses: list[int],
        actual: int,
    ) -> int:
        """Drive the crypto engine; returns when the correct pad is ready."""
        blocks = self.blocks
        if self.oracle or cache_hit:
            # Sequence number known on-chip: demand pad generation starts
            # immediately and overlaps the whole memory fetch (Figure 4c,
            # hit case).
            return self.engine.issue(now, blocks, speculative=False)[-1]
        if guesses:
            completions = self.engine.issue(
                now, blocks * len(guesses), speculative=True
            )
            if actual in guesses:
                index = guesses.index(actual)
                return completions[blocks * (index + 1) - 1]
            # All speculation wasted; fall through to the demand path once
            # the true sequence number has arrived (Figure 4b, miss case).
        return self.engine.issue(seqnum_ready, blocks, speculative=False)[-1]

    def _trace_fetch(
        self,
        now: int,
        timing,
        pad_ready: int,
        data_ready: int,
        line: int,
        seqnum: int,
        fetch_class: FetchClass,
        predicted: bool,
        cache_hit: bool,
        guesses: int,
    ) -> None:
        """Emit the Figure 4 timeline of one fetch onto the tracer's tracks."""
        address = f"{line:#x}"
        self.tracer.span(
            "fetch", now, data_ready, track="controller", category="secure",
            address=address, seqnum=seqnum, fetch_class=fetch_class.value,
            predicted=predicted, seqcache_hit=cache_hit,
        )
        self.tracer.span(
            "dram", timing.issue, timing.line_ready, track="dram",
            category="memory", address=address,
        )
        self.tracer.instant(
            "seqnum_ready", timing.seqnum_ready, track="dram",
            category="memory", address=address,
        )
        if guesses:
            pad_name = "speculate" if predicted else "speculate (miss)"
        elif cache_hit or self.oracle:
            pad_name = "demand pad (overlapped)"
        else:
            pad_name = "demand pad"
        pad_start = max(now, pad_ready - self.engine.latency)
        self.tracer.span(
            pad_name, pad_start, pad_ready,
            track="crypto", category="crypto", address=address, guesses=guesses,
        )
        self.tracer.instant(
            "match/xor", data_ready, track="controller", category="secure",
            address=address,
        )
        # Flow arrows stitch this fetch's three acts — miss issue, pad
        # computation, match/XOR — across tracks.  The flow *name* encodes
        # the outcome so mispredicted chains read differently in the viewer.
        if predicted:
            flow_name = "pred hit"
        elif guesses:
            flow_name = "pred miss"
        elif cache_hit or self.oracle:
            flow_name = "seqnum hit"
        else:
            flow_name = "demand"
        flow = self.tracer.next_flow_id()
        self.tracer.flow_begin(
            flow_name, now, flow, track="controller", address=address,
        )
        self.tracer.flow_step(
            flow_name, pad_start, flow, track="crypto", address=address,
        )
        self.tracer.flow_end(
            flow_name, data_ready, flow, track="controller", address=address,
        )
        # Counter tracks: prediction-queue depth, quarantine population,
        # and (when configured) sequence-number-cache occupancy.
        self.tracer.counter(
            "pred.queue_depth", now, track="controller", guesses=guesses,
        )
        self.tracer.counter(
            "secure.quarantined", now, track="controller",
            lines=len(self.quarantine),
        )
        if self.seqcache is not None:
            self.tracer.counter(
                "seqcache.occupancy", now, track="controller",
                lines=self.seqcache.occupancy,
            )

    def _classify(self, cache_hit: bool, predicted: bool) -> FetchClass:
        if cache_hit and predicted:
            return FetchClass.BOTH
        if predicted:
            return FetchClass.PRED_ONLY
        if cache_hit:
            return FetchClass.CACHE_ONLY
        return FetchClass.NEITHER

    def _decrypt(self, line: int, seqnum: int) -> bytes:
        assert self.otp is not None
        if not self.backing.has_line(line):
            # Fresh (never written) line: defined to read as zeros.
            return bytes(self.address_map.line_bytes)
        ciphertext = self.backing.read_line(line)
        if self.integrity_tree is not None:
            self.integrity_tree.verify(line, seqnum, ciphertext)
        return self.otp.open(line, seqnum, ciphertext)

    def _decrypt_with_recovery(
        self, line: int, seqnum: int, data_ready: int
    ) -> tuple[bytes, int, bool]:
        """Decrypt, retrying integrity failures under the recovery policy.

        Each retry models a full re-fetch: exponential backoff, a fresh
        DRAM round trip, and a demand pad regeneration — so the returned
        ``data_ready`` carries the true cycle cost of recovery.  Lines that
        exhaust the retry budget join the quarantine set and the fetch
        raises :class:`FetchFailedError`.

        Returns ``(plaintext, data_ready, retried)``.
        """
        attempt = 0
        while True:
            try:
                plaintext = self._decrypt(line, seqnum)
                return plaintext, data_ready, attempt > 0
            except IntegrityError as err:
                self.stats.resilience.integrity_faults += 1
                self._note_fault()
                if self.recovery is None:
                    raise
                if attempt >= self.recovery.max_retries:
                    self.quarantine.add(line)
                    self.stats.resilience.quarantined_lines += 1
                    self.stats.resilience.failed_fetches += 1
                    raise FetchFailedError(
                        f"line {line:#x}: integrity failure persisted through "
                        f"{attempt + 1} attempt(s); line quarantined",
                        line_address=line,
                        attempts=attempt + 1,
                        quarantined=True,
                        cause=err,
                    ) from err
                attempt += 1
                self.stats.resilience.retries += 1
                retry_at = data_ready + self.recovery.backoff_cycles(attempt)
                # The re-fetch itself may hit dropped responses; _dram_fetch
                # applies the same bounded-retry discipline to those.
                timing, _ = self._dram_fetch(retry_at, line)
                pad_ready = self.engine.issue(
                    timing.seqnum_ready, self.blocks, speculative=False
                )[-1]
                data_ready = max(timing.line_ready, pad_ready)

    # -- write-back path -----------------------------------------------------------

    def writeback_line(
        self, now: int, address: int, plaintext: bytes | None = None
    ) -> WritebackResult:
        """Handle a dirty L2 eviction: advance counter, encrypt, post write."""
        # Validate *before* any state mutation so a rejected write-back
        # leaves counters, the seqcache and the predictor untouched.
        if self.functional:
            if plaintext is None:
                raise ValueError("functional mode write-back requires plaintext")
            if len(plaintext) != self.address_map.line_bytes:
                raise ValueError(
                    f"plaintext must be {self.address_map.line_bytes} bytes, "
                    f"got {len(plaintext)}"
                )
        line = self.address_map.line_address(address)
        page = self.address_map.page_number(line)
        state = self.page_table.state(page)
        old = self.current_seqnum(line)
        reencrypted = False

        if self.page_table.counts_from_current_root(page, old):
            if old == _MASK64:
                # Saturated counter: one more increment would wrap to a
                # previously used value and reuse a pad.  Never wrap
                # silently — re-encrypt the page under a fresh root, or
                # refuse outright.
                self.stats.resilience.counter_overflows += 1
                if self.recovery is None or not self.recovery.reencrypt_on_overflow:
                    raise CounterOverflowError(
                        f"sequence number for line {line:#x} is saturated; "
                        f"advancing would reuse a pad",
                        line_address=line,
                        page=page,
                        seqnum=old,
                    )
                now = self._reencrypt_page(now, page)
                state = self.page_table.state(page)
                old = self.current_seqnum(line)
                reencrypted = True
            new_seqnum = (old + 1) & _MASK64
            rebased = False
        else:
            # Distance test failed: the line still counts from a pre-reset
            # root; rebase it onto the current root (Section 3.2).
            new_seqnum = state.root
            rebased = True

        self.backing.write_seqnum(line, new_seqnum)
        if self.seqcache:
            self.seqcache.update(line)
        self.predictor.observe_writeback(page, line, new_seqnum)

        # The write-back is always encrypted under a *new* pad based on the
        # current root (Section 7.3) — demand work on the engine.
        pad_done = self.engine.issue(now, self.blocks, speculative=False)[-1]
        completion = self.dram.write(
            pad_done, line, self.address_map.line_bytes + 8
        )

        if self.functional:
            assert self.otp is not None and self.auditor is not None
            self.auditor.on_seal(line, new_seqnum)
            ciphertext = self.otp.seal(line, new_seqnum, plaintext)
            self.backing.write_line(line, ciphertext)
            if self.integrity_tree is not None:
                self.integrity_tree.update(line, new_seqnum, ciphertext)

        self.stats.writebacks += 1
        if rebased:
            self.stats.rebased_writebacks += 1
        if self.tracer.enabled:
            self.tracer.span(
                "writeback", now, completion, track="controller",
                category="secure", address=f"{line:#x}", seqnum=new_seqnum,
                rebased=rebased, reencrypted_page=reencrypted,
            )
        return WritebackResult(
            address=line,
            seqnum=new_seqnum,
            completion_time=completion,
            rebased=rebased,
            reencrypted_page=reencrypted,
        )

    def _reencrypt_page(self, now: int, page: int) -> int:
        """Re-encrypt every counter-bearing line of ``page`` under a fresh root.

        The overflow response of the recovery policy: decrypt each line
        under its current counter, draw a new random root, and re-seal
        everything starting from it — the page behaves as if freshly
        mapped, and no (address, seqnum) pair repeats.  Returns the cycle
        at which the re-encryption traffic has been issued.
        """
        lines = [
            line
            for line in self.backing.seqnum_lines()
            if self.address_map.page_number(line) == page
        ]
        recovered: list[tuple[int, bytes | None]] = []
        for line in lines:
            if self.functional and self.backing.has_line(line):
                seqnum = self.current_seqnum(line)
                ciphertext = self.backing.read_line(line)
                if self.integrity_tree is not None:
                    self.integrity_tree.verify(line, seqnum, ciphertext)
                assert self.otp is not None
                recovered.append((line, self.otp.open(line, seqnum, ciphertext)))
            else:
                recovered.append((line, None))

        new_root = self.page_table.reset_root(page)
        # Timing: one decrypt + one encrypt pad per line through the demand
        # port, plus the line+counter write traffic.
        if lines:
            now = self.engine.issue(
                now, 2 * self.blocks * len(lines), speculative=False
            )[-1]
        for line, line_plaintext in recovered:
            self.backing.write_seqnum(line, new_root)
            now = self.dram.write(now, line, self.address_map.line_bytes + 8)
            if line_plaintext is not None:
                assert self.otp is not None and self.auditor is not None
                self.auditor.on_seal(line, new_root)
                ciphertext = self.otp.seal(line, new_root, line_plaintext)
                self.backing.write_line(line, ciphertext)
                if self.integrity_tree is not None:
                    self.integrity_tree.update(line, new_root, ciphertext)
        self.stats.resilience.pages_reencrypted += 1
        return now
