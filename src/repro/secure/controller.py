"""Secure memory controller: the protected-domain boundary of Figure 2.

Every L2 miss and every dirty L2 eviction crosses this controller.  It owns
the whole decryption-latency story the paper is about:

* **fetch** — issue the pipelined (sequence number, encrypted line) DRAM
  read; meanwhile either (a) do nothing (baseline), (b) probe the
  sequence-number cache (prior art), or (c) push speculative pad
  computations for the predictor's guesses through the idle crypto engine
  (this paper).  When the true sequence number lands, a matching guess means
  the pad is already (or nearly) ready and decryption is one XOR.
* **write-back** — advance the line's sequence number (increment, or rebase
  onto the current root after a reset, Section 3.2's distance test),
  generate the fresh pad, encrypt, and update counter + MAC tree in RAM.

The controller runs in one of two modes sharing the identical control path:
*timing-only* (no key) tracks when data would be ready; *functional* (with a
key) additionally performs real AES pad generation, line encryption,
integrity verification, and pad-reuse auditing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.crypto.engine import CryptoEngine
from repro.memory.address import AddressMap, DEFAULT_ADDRESS_MAP
from repro.memory.backing import BackingStore
from repro.memory.dram import Dram
from repro.secure.integrity import IntegrityTree
from repro.secure.otp import OtpGenerator, blocks_per_line
from repro.secure.predictors import NullPredictor, OtpPredictor
from repro.secure.seqcache import SequenceNumberCache
from repro.secure.seqnum import PageSecurityTable
from repro.secure.threat import PadReuseAuditor

__all__ = [
    "FetchClass",
    "FetchResult",
    "WritebackResult",
    "ControllerStats",
    "SecureMemoryController",
]

_MASK64 = (1 << 64) - 1


class FetchClass(enum.Enum):
    """Fig. 9 classification of how a fetch's sequence number was covered."""

    BOTH = "both"              # in the seqnum cache AND predictable
    PRED_ONLY = "pred_only"    # missed the cache but predicted
    CACHE_ONLY = "cache_only"  # cached but not predictable
    NEITHER = "neither"


@dataclass(frozen=True)
class FetchResult:
    """Timing and (in functional mode) data outcome of one line fetch."""

    address: int
    seqnum: int
    issue_time: int
    seqnum_ready: int
    line_ready: int
    pad_ready: int
    data_ready: int
    predicted: bool
    seqcache_hit: bool
    fetch_class: FetchClass
    plaintext: bytes | None = None

    @property
    def exposed_latency(self) -> int:
        """Cycles from issue until the decrypted line is usable."""
        return self.data_ready - self.issue_time

    @property
    def decryption_overhead(self) -> int:
        """Cycles the crypto path added beyond the raw memory fetch."""
        return self.data_ready - self.line_ready


@dataclass(frozen=True)
class WritebackResult:
    """Outcome of one encrypted write-back."""

    address: int
    seqnum: int
    completion_time: int
    rebased: bool


@dataclass
class ControllerStats:
    """Controller-level counters (predictor/cache substructures keep their own)."""

    fetches: int = 0
    writebacks: int = 0
    rebased_writebacks: int = 0
    covered_fetches: int = 0          # pad path overlapped with the fetch
    class_counts: dict = field(
        default_factory=lambda: {kind: 0 for kind in FetchClass}
    )
    total_exposed_latency: int = 0
    total_decryption_overhead: int = 0

    @property
    def coverage(self) -> float:
        """Fraction of fetches whose pad generation overlapped the fetch."""
        return self.covered_fetches / self.fetches if self.fetches else 0.0

    @property
    def mean_exposed_latency(self) -> float:
        """Average cycles from miss issue to usable data."""
        return self.total_exposed_latency / self.fetches if self.fetches else 0.0


class SecureMemoryController:
    """Counter-mode memory encryption engine-room.

    Parameters
    ----------
    predictor:
        An :class:`~repro.secure.predictors.OtpPredictor`; defaults to the
        never-speculating :class:`~repro.secure.predictors.NullPredictor`.
    seqcache:
        Optional :class:`~repro.secure.seqcache.SequenceNumberCache` (prior
        art); may be combined with a predictor (Section 6.1 / Fig. 9).
    oracle:
        If True, pretend every sequence number is on-chip (the
        normalization target of the IPC figures).
    key:
        Enable functional mode: real AES pads, encryption of line data in
        the backing store, integrity tree, pad-reuse auditing.
    pad_buffer_entries:
        Capacity of the precomputed-pad table of Figure 5, in AES blocks.
        Guess lists that would overflow it are truncated.
    """

    def __init__(
        self,
        engine: CryptoEngine | None = None,
        dram: Dram | None = None,
        page_table: PageSecurityTable | None = None,
        predictor: OtpPredictor | None = None,
        seqcache: SequenceNumberCache | None = None,
        oracle: bool = False,
        address_map: AddressMap = DEFAULT_ADDRESS_MAP,
        key: bytes | None = None,
        integrity: bool = False,
        pad_buffer_entries: int = 64,
        backing: BackingStore | None = None,
    ):
        self.engine = engine if engine is not None else CryptoEngine()
        self.dram = dram if dram is not None else Dram()
        # `is not None` rather than `or`: several of these types define
        # __len__, so freshly built (empty) instances are falsy.
        self.page_table = (
            page_table if page_table is not None else PageSecurityTable()
        )
        self.predictor = (
            predictor if predictor is not None else NullPredictor(self.page_table)
        )
        if self.predictor.table is not self.page_table:
            raise ValueError("predictor must share the controller's page table")
        self.seqcache = seqcache
        self.oracle = oracle
        self.address_map = address_map
        self.backing = backing if backing is not None else BackingStore(address_map)
        self.stats = ControllerStats()
        self.blocks = blocks_per_line(address_map.line_bytes)
        if pad_buffer_entries < self.blocks:
            raise ValueError(
                f"pad buffer must hold at least one line's pads "
                f"({self.blocks} blocks), got {pad_buffer_entries}"
            )
        self.max_guesses = pad_buffer_entries // self.blocks

        self.functional = key is not None
        self.otp: OtpGenerator | None = None
        self.integrity_tree: IntegrityTree | None = None
        self.auditor: PadReuseAuditor | None = None
        if self.functional:
            self.otp = OtpGenerator(key, line_bytes=address_map.line_bytes)
            self.auditor = PadReuseAuditor()
            if integrity:
                # Domain-separate the MAC key from the encryption key.
                self.integrity_tree = IntegrityTree(
                    key + b"integrity", address_map=address_map
                )
        elif integrity:
            raise ValueError("integrity tree requires functional mode (a key)")

    # -- sequence-number state -------------------------------------------------

    def current_seqnum(self, line_address: int) -> int:
        """The counter RAM currently holds for this line.

        A line never written back still holds the value installed at page
        mapping: the page's mapping-time root.
        """
        stored = self.backing.read_seqnum(line_address)
        if stored is not None:
            return stored
        page = self.address_map.page_number(line_address)
        return self.page_table.state(page).mapping_root

    # -- fetch path --------------------------------------------------------------

    def fetch_line(self, now: int, address: int) -> FetchResult:
        """Handle an L2 miss: fetch, (maybe) speculate, decrypt."""
        line = self.address_map.line_address(address)
        page = self.address_map.page_number(line)
        timing = self.dram.fetch_line_with_seqnum(
            now, line, self.address_map.line_bytes
        )
        actual = self.current_seqnum(line)

        cache_hit = self.seqcache.lookup(line) if self.seqcache else False

        predicted = False
        guesses: list[int] = []
        if not self.oracle and not isinstance(self.predictor, NullPredictor):
            guesses = self.predictor.predict(page, line)[: self.max_guesses]
            predicted = self.predictor.record(guesses, actual)

        pad_ready = self._schedule_pads(
            now, timing.seqnum_ready, cache_hit, guesses, actual
        )

        if not self.oracle:
            self.predictor.observe_fetch(page, line, actual, predicted)
        if self.seqcache and not cache_hit:
            self.seqcache.fill(line)

        data_ready = max(timing.line_ready, pad_ready, timing.seqnum_ready)
        plaintext = self._decrypt(line, actual) if self.functional else None

        fetch_class = self._classify(cache_hit, predicted)
        self.stats.fetches += 1
        self.stats.class_counts[fetch_class] += 1
        # "Covered" = pad generation overlapped the fetch instead of
        # serializing behind the sequence number's arrival (Figure 4).
        if pad_ready < timing.seqnum_ready + self.engine.latency:
            self.stats.covered_fetches += 1
        self.stats.total_exposed_latency += data_ready - now
        self.stats.total_decryption_overhead += data_ready - timing.line_ready

        return FetchResult(
            address=line,
            seqnum=actual,
            issue_time=now,
            seqnum_ready=timing.seqnum_ready,
            line_ready=timing.line_ready,
            pad_ready=pad_ready,
            data_ready=data_ready,
            predicted=predicted,
            seqcache_hit=cache_hit,
            fetch_class=fetch_class,
            plaintext=plaintext,
        )

    def _schedule_pads(
        self,
        now: int,
        seqnum_ready: int,
        cache_hit: bool,
        guesses: list[int],
        actual: int,
    ) -> int:
        """Drive the crypto engine; returns when the correct pad is ready."""
        blocks = self.blocks
        if self.oracle or cache_hit:
            # Sequence number known on-chip: demand pad generation starts
            # immediately and overlaps the whole memory fetch (Figure 4c,
            # hit case).
            return self.engine.issue(now, blocks, speculative=False)[-1]
        if guesses:
            completions = self.engine.issue(
                now, blocks * len(guesses), speculative=True
            )
            if actual in guesses:
                index = guesses.index(actual)
                return completions[blocks * (index + 1) - 1]
            # All speculation wasted; fall through to the demand path once
            # the true sequence number has arrived (Figure 4b, miss case).
        return self.engine.issue(seqnum_ready, blocks, speculative=False)[-1]

    def _classify(self, cache_hit: bool, predicted: bool) -> FetchClass:
        if cache_hit and predicted:
            return FetchClass.BOTH
        if predicted:
            return FetchClass.PRED_ONLY
        if cache_hit:
            return FetchClass.CACHE_ONLY
        return FetchClass.NEITHER

    def _decrypt(self, line: int, seqnum: int) -> bytes:
        assert self.otp is not None
        if not self.backing.has_line(line):
            # Fresh (never written) line: defined to read as zeros.
            return bytes(self.address_map.line_bytes)
        ciphertext = self.backing.read_line(line)
        if self.integrity_tree is not None:
            self.integrity_tree.verify(line, seqnum, ciphertext)
        return self.otp.open(line, seqnum, ciphertext)

    # -- write-back path -----------------------------------------------------------

    def writeback_line(
        self, now: int, address: int, plaintext: bytes | None = None
    ) -> WritebackResult:
        """Handle a dirty L2 eviction: advance counter, encrypt, post write."""
        line = self.address_map.line_address(address)
        page = self.address_map.page_number(line)
        state = self.page_table.state(page)
        old = self.current_seqnum(line)

        if self.page_table.counts_from_current_root(page, old):
            new_seqnum = (old + 1) & _MASK64
            rebased = False
        else:
            # Distance test failed: the line still counts from a pre-reset
            # root; rebase it onto the current root (Section 3.2).
            new_seqnum = state.root
            rebased = True

        self.backing.write_seqnum(line, new_seqnum)
        if self.seqcache:
            self.seqcache.update(line)
        self.predictor.observe_writeback(page, line, new_seqnum)

        # The write-back is always encrypted under a *new* pad based on the
        # current root (Section 7.3) — demand work on the engine.
        pad_done = self.engine.issue(now, self.blocks, speculative=False)[-1]
        completion = self.dram.write(
            pad_done, line, self.address_map.line_bytes + 8
        )

        if self.functional:
            if plaintext is None:
                raise ValueError("functional mode write-back requires plaintext")
            if len(plaintext) != self.address_map.line_bytes:
                raise ValueError(
                    f"plaintext must be {self.address_map.line_bytes} bytes, "
                    f"got {len(plaintext)}"
                )
            assert self.otp is not None and self.auditor is not None
            self.auditor.on_seal(line, new_seqnum)
            ciphertext = self.otp.seal(line, new_seqnum, plaintext)
            self.backing.write_line(line, ciphertext)
            if self.integrity_tree is not None:
                self.integrity_tree.update(line, new_seqnum, ciphertext)

        self.stats.writebacks += 1
        if rebased:
            self.stats.rebased_writebacks += 1
        return WritebackResult(
            address=line,
            seqnum=new_seqnum,
            completion_time=completion,
            rebased=rebased,
        )
