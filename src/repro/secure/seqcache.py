"""Sequence-number cache — the prior-art baseline (Suh et al., Yang et al.).

Caches the per-line counters on-chip so that, on an L2 miss, pad generation
can start before the counter returns from RAM.  Geometry follows Table 1:
32-byte cache lines, so each resident line holds four adjacent 64-bit
counters (spatially adjacent memory lines share a sequence-number cache
line — one source of its hit rate).

The paper evaluates 4KB, 32KB, 128KB and 512KB variants and shows the hit
rate plateaus ("the sequence number cache may contain (multiple) very large
working sets"), which is the motivation for OTP prediction.
"""

from __future__ import annotations

from repro.memory.address import AddressMap, DEFAULT_ADDRESS_MAP
from repro.memory.cache import Cache, CacheConfig, CacheStats

__all__ = ["SequenceNumberCache"]

_SEQNUM_BYTES = 8


class SequenceNumberCache:
    """On-chip cache of per-line sequence numbers.

    Parameters
    ----------
    size_bytes:
        Total capacity (e.g. ``4096`` .. ``524288``).
    associativity:
        Ways (Table 1 uses the L2's 4-way organization).
    """

    def __init__(
        self,
        size_bytes: int,
        associativity: int = 4,
        line_bytes: int = 32,
        address_map: AddressMap = DEFAULT_ADDRESS_MAP,
    ):
        self.address_map = address_map
        self._tags = Cache(
            CacheConfig(
                size_bytes=size_bytes,
                line_bytes=line_bytes,
                associativity=associativity,
                name=f"seqcache-{size_bytes // 1024}k",
            )
        )
        # Demand-path counters: the paper's "sequence number hit rate" is
        # hits on L2-miss lookups only, not fills or write-back updates.
        self.demand_lookups = 0
        self.demand_hits = 0

    @property
    def stats(self) -> CacheStats:
        """Raw tag-array counters (includes fills and updates)."""
        return self._tags.stats

    def absorb(self, demand_lookups: int = 0, demand_hits: int = 0) -> None:
        """Fold a batch of demand lookups into the counters.

        Batch entry point for the batched replay core, which accumulates
        per-epoch deltas instead of bumping these fields per lookup.
        """
        self.demand_lookups += demand_lookups
        self.demand_hits += demand_hits

    @property
    def hit_rate(self) -> float:
        """Demand hit rate (Figures 7/8)."""
        if not self.demand_lookups:
            return 0.0
        return self.demand_hits / self.demand_lookups

    @property
    def size_bytes(self) -> int:
        """Total capacity in bytes."""
        return self._tags.config.size_bytes

    @property
    def occupancy(self) -> int:
        """Counter lines currently resident (timeline counter track)."""
        return self._tags.occupancy

    def publish(self, registry, prefix: str = "secure.seqcache") -> None:
        """Export demand-path and tag-array counters under ``prefix``."""
        registry.counter(f"{prefix}.demand_lookups").inc(self.demand_lookups)
        registry.counter(f"{prefix}.demand_hits").inc(self.demand_hits)
        registry.gauge(f"{prefix}.hit_rate").set(self.hit_rate)
        self._tags.stats.publish(registry, f"{prefix}.tags")

    def _counter_address(self, line_address: int) -> int:
        """Address of the counter for ``line_address`` in the counter array."""
        return self.address_map.line_index(line_address) * _SEQNUM_BYTES

    def lookup(self, line_address: int) -> bool:
        """Probe-and-touch for a demand fetch; True if the counter is on-chip."""
        hit = self._tags.access(self._counter_address(line_address)).hit
        self.demand_lookups += 1
        if hit:
            self.demand_hits += 1
        return hit

    def fill(self, line_address: int) -> None:
        """Install the counter after it arrived from memory (miss fill)."""
        counter = self._counter_address(line_address)
        if not self._tags.probe(counter):
            self._tags.access(counter)

    def update(self, line_address: int) -> None:
        """Write-back path: the line's counter was just incremented.

        The schemes of [20, 25] insert/update the counter of an evicted line
        so a prompt re-fetch can hit.
        """
        self._tags.access(self._counter_address(line_address), is_write=True)

    def contains(self, line_address: int) -> bool:
        """Non-destructive probe (no LRU update, no stats)."""
        return self._tags.probe(self._counter_address(line_address))
