"""Memory pre-decryption (Rogers et al.) and the hybrid of Section 9.2.

The paper's related-work section contrasts OTP prediction with *memory
pre-decryption*: prefetch the next line(s) and decrypt them ahead of use.
Pre-decryption can hide the whole miss, but "can increase workload on the
front side bus and memory controller if [it] become[s] too aggressive",
whereas "OTP prediction fetches only those lines absolutely required, thus
no throttling on the bus.  However, memory pre-decryption and OTP
prediction are orthogonal techniques.  A hybrid approach can be designed
for further performance improvement."

This module builds that comparison point and the suggested hybrid:
:class:`PredecryptingController` extends the secure controller with a
stride-detecting prefetcher (the standard hardware technique [2, 5])
whose prefetches go through the *same* DRAM, bus and crypto-engine models
— so the extra traffic and engine load are charged faithfully.  Combining
it with any predictor yields the hybrid.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.secure.controller import FetchClass, FetchResult, SecureMemoryController

__all__ = ["PredecryptStats", "PredecryptingController"]


@dataclass
class PredecryptStats:
    """Prefetch-path counters."""

    prefetches_issued: int = 0
    prefetch_hits: int = 0
    prefetch_discards: int = 0

    @property
    def accuracy(self) -> float:
        """Fraction of issued prefetches that served a later demand miss."""
        if not self.prefetches_issued:
            return 0.0
        return self.prefetch_hits / self.prefetches_issued


class PredecryptingController(SecureMemoryController):
    """Secure controller with stride prefetch + pre-decryption.

    Parameters
    ----------
    prefetch_depth:
        How many strides ahead to prefetch once a page's stride is stable.
    buffer_lines:
        Capacity of the pre-decrypted line buffer (kept outside the normal
        caches, so no pollution — the design point [17] argues for).
    """

    def __init__(
        self,
        *args,
        prefetch_depth: int = 1,
        buffer_lines: int = 32,
        stride_table_entries: int = 64,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if prefetch_depth < 1:
            raise ValueError(f"prefetch_depth must be >= 1, got {prefetch_depth}")
        if buffer_lines < 1:
            raise ValueError(f"buffer_lines must be >= 1, got {buffer_lines}")
        self.prefetch_depth = prefetch_depth
        self.buffer_lines = buffer_lines
        self.predecrypt_stats = PredecryptStats()
        # line address -> cycle at which its decrypted copy is ready
        self._buffer: OrderedDict[int, int] = OrderedDict()
        # Classic per-page stride detector: page -> [last_line, stride, conf].
        self._stride_table_entries = stride_table_entries
        self._strides: OrderedDict[int, list[int]] = OrderedDict()

    def fetch_line(self, now: int, address: int) -> FetchResult:
        """Serve from the pre-decrypted buffer if possible; else fetch,
        then prefetch ahead along the detected stride."""
        line = self.address_map.line_address(address)
        ready = self._buffer.pop(line, None)
        if ready is not None:
            self.predecrypt_stats.prefetch_hits += 1
            return self._buffered_result(now, line, ready)
        result = super().fetch_line(now, address)
        self._issue_prefetches(now, line)
        return result

    def _buffered_result(self, now: int, line: int, ready: int) -> FetchResult:
        """A demand access served from the pre-decrypted buffer."""
        actual = self.current_seqnum(line)
        data_ready = max(now, ready)
        plaintext = self._decrypt(line, actual) if self.functional else None
        self.stats.fetches += 1
        self.stats.class_counts[FetchClass.NEITHER] += 1
        self.stats.covered_fetches += 1
        self.stats.record_fetch_latency(data_ready - now, 0)
        return FetchResult(
            address=line,
            seqnum=actual,
            issue_time=now,
            seqnum_ready=data_ready,
            line_ready=data_ready,
            pad_ready=data_ready,
            data_ready=data_ready,
            predicted=False,
            seqcache_hit=False,
            fetch_class=FetchClass.NEITHER,
            plaintext=plaintext,
        )

    def _detect_stride(self, line: int) -> int | None:
        """Classic stride detection: confirm the same delta twice running.

        Falls back to ``None`` (no prefetch) until a page shows a stable
        stride — prefetch papers use exactly this to avoid flooding the
        bus with useless next-line fetches on non-unit-stride code.
        """
        page = self.address_map.page_number(line)
        entry = self._strides.get(page)
        if entry is None:
            if len(self._strides) >= self._stride_table_entries:
                self._strides.popitem(last=False)
            self._strides[page] = [line, 0, 0]
            return None
        self._strides.move_to_end(page)
        last_line, stride, confidence = entry
        delta = line - last_line
        if delta == 0:
            return None
        if delta == stride:
            entry[0] = line
            entry[2] = min(confidence + 1, 4)
        else:
            entry[0] = line
            entry[1] = delta
            entry[2] = 0
        return entry[1] if entry[2] >= 1 else None

    def _issue_prefetches(self, now: int, line: int) -> None:
        """Fetch and pre-decrypt ahead along the detected stride."""
        stride = self._detect_stride(line)
        if stride is None:
            return
        for step in range(1, self.prefetch_depth + 1):
            target = line + step * stride
            if target < 0 or target in self._buffer:
                continue
            timing = self.dram.fetch_line_with_seqnum(
                now, target, self.address_map.line_bytes
            )
            pad_done = self.engine.issue(
                timing.seqnum_ready, self.blocks, speculative=True
            )[-1]
            ready = max(timing.line_ready, pad_done)
            self._buffer[target] = ready
            self._buffer.move_to_end(target)
            self.predecrypt_stats.prefetches_issued += 1
            while len(self._buffer) > self.buffer_lines:
                self._buffer.popitem(last=False)
                self.predecrypt_stats.prefetch_discards += 1

    def writeback_line(self, now: int, address: int, plaintext: bytes | None = None):
        """Write back; any stale pre-decrypted copy is invalidated."""
        # A dirty write-back invalidates any stale pre-decrypted copy.
        line = self.address_map.line_address(address)
        if self._buffer.pop(line, None) is not None:
            self.predecrypt_stats.prefetch_discards += 1
        return super().writeback_line(now, address, plaintext)
