"""Structured error taxonomy for the secure memory pipeline.

Section 2.2 assumes an integrity substrate that *detects* tampering; a
production controller additionally has to say *what* it detected so the
layers above can choose a response: retry a transient corruption, quarantine
a persistently tampered line, re-encrypt a page whose counter saturated.
A bare ``ValueError`` or a generic ``IntegrityError`` cannot carry that
decision, so every error the hot paths can raise derives from
:class:`SecureMemoryError` and carries the context a
:class:`~repro.secure.controller.RecoveryPolicy` (or an experiment sweep)
needs to classify it.

Hierarchy::

    SecureMemoryError
    ├── IntegrityError            authentication failed (what, we don't know)
    │   ├── TamperDetectedError   fetched bytes diverge from the MAC/tree
    │   └── ReplayDetectedError   a *consistent* stale state was presented
    ├── CounterOverflowError      a sequence number would wrap (pad-reuse hazard)
    └── FetchFailedError          a fetch gave up (dropped responses, retries
                                  exhausted, quarantined line)

``IntegrityError`` keeps its historical home in
:mod:`repro.secure.integrity` (re-exported from there), so existing callers
and tests that catch it keep working unchanged.
"""

from __future__ import annotations

__all__ = [
    "SecureMemoryError",
    "IntegrityError",
    "TamperDetectedError",
    "ReplayDetectedError",
    "CounterOverflowError",
    "FetchFailedError",
]


class SecureMemoryError(Exception):
    """Base class for every error the secure memory pipeline raises."""


class IntegrityError(SecureMemoryError):
    """Raised when a fetched line fails authentication."""


class TamperDetectedError(IntegrityError):
    """Fetched (ciphertext, counter) bytes diverge from their MAC or tree leaf.

    The classic malleability/corruption case: what came back from untrusted
    memory does not match what the substrate recorded for it.
    """

    def __init__(self, message: str, *, line_address: int, seqnum: int, level: int = 0):
        super().__init__(message)
        self.line_address = line_address
        self.seqnum = seqnum
        #: Tree level at which verification diverged (0 = leaf; flat MACs
        #: always report 0).
        self.level = level


class ReplayDetectedError(IntegrityError):
    """A *self-consistent* stale (ciphertext, counter, MAC) state was replayed.

    The fetched triple agrees with the stored leaf — the adversary rolled
    back every untrusted byte together — but the path no longer reaches the
    on-chip root.  Only a tree rooted in the protected domain can make this
    distinction; a flat MAC store accepts such a rollback silently.
    """

    def __init__(self, message: str, *, line_address: int, seqnum: int, level: int):
        super().__init__(message)
        self.line_address = line_address
        self.seqnum = seqnum
        #: First tree level whose recomputed digest diverged from storage.
        self.level = level


class CounterOverflowError(SecureMemoryError):
    """A line's 64-bit sequence number is saturated and cannot advance.

    Incrementing past 2^64 - 1 would wrap the counter to a previously used
    value and reuse a one-time pad — the catastrophic failure counter-mode
    designs must never allow.  The write-back path raises this instead of
    wrapping silently; a recovery policy turns it into a page re-encryption
    under a fresh root.
    """

    def __init__(self, message: str, *, line_address: int, page: int, seqnum: int):
        super().__init__(message)
        self.line_address = line_address
        self.page = page
        self.seqnum = seqnum


class FetchFailedError(SecureMemoryError):
    """A line fetch could not be completed.

    Carries the full fetch context so campaign runners and sweeps can report
    the cell instead of dying: the address, how many attempts were made,
    whether the line is now quarantined, and the last underlying error (a
    dropped DRAM response, an integrity failure that survived every retry,
    ...).
    """

    def __init__(
        self,
        message: str,
        *,
        line_address: int,
        attempts: int = 1,
        quarantined: bool = False,
        cause: Exception | None = None,
    ):
        super().__init__(message)
        self.line_address = line_address
        self.attempts = attempts
        self.quarantined = quarantined
        self.cause = cause
