"""Per-page security context: root sequence numbers, PHV, root history.

Figure 5 / Figure 6 of the paper: every virtual page is assigned a random
64-bit *root sequence number* when it is mapped; all lines of the page start
counting from that root.  A 16-bit *prediction history vector* (PHV) per
page records hit/miss of the last 16 predictions; when mispredictions cross
a threshold the page's root is re-randomized (adaptive prediction,
Section 3.2).  Old roots can optionally be remembered (Section 7.3).

This state lives in the protected domain — architecturally it is cached in
TLB entries and spilled to protected per-process storage, which the trusted
kernel preserves across context switches (Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rng import HardwareRng

__all__ = ["PageSecurityState", "PageSecurityTable", "seqnum_distance"]

_MASK64 = (1 << 64) - 1

#: A sequence number whose distance from the current root is below this
#: bound is considered to count from the current root (Section 3.2's
#: "distance test"; the bound only affects reset heuristics, not security).
DISTANCE_WINDOW = 1 << 20


def seqnum_distance(seqnum: int, root: int) -> int:
    """Modular distance ``seqnum - root`` in 64-bit space."""
    return (seqnum - root) & _MASK64


@dataclass
class PageSecurityState:
    """Mutable security context of one virtual page."""

    root: int
    mapping_root: int                  # root at page-map time (RAM counters start here)
    phv: int = 0                       # 16-bit shift register, 1 = misprediction
    phv_fill: int = 0                  # how many of the 16 slots are valid
    old_roots: tuple[int, ...] = ()
    resets: int = 0
    latest_offset: int = 0             # per-page LOR variant (global LOR in predictor)


class PageSecurityTable:
    """Authoritative map: virtual page number -> :class:`PageSecurityState`.

    Parameters
    ----------
    rng:
        Hardware RNG model used for root (re)assignment.
    phv_bits:
        Width of the prediction history vector (Table 1: 16).
    phv_threshold:
        Mispredictions among the last ``phv_bits`` predictions that trigger
        a root reset (Table 1: 12).
    history_depth:
        How many old roots to remember after resets (Section 7.3 keeps
        "1 or 2 at most"; 0 disables the optimization).
    """

    def __init__(
        self,
        rng: HardwareRng | None = None,
        phv_bits: int = 16,
        phv_threshold: int = 12,
        history_depth: int = 0,
    ):
        if phv_bits <= 0 or phv_bits > 64:
            raise ValueError(f"phv_bits must be in [1, 64], got {phv_bits}")
        if not 0 < phv_threshold <= phv_bits:
            raise ValueError(
                f"phv_threshold must be in [1, {phv_bits}], got {phv_threshold}"
            )
        if history_depth < 0:
            raise ValueError(f"history_depth must be >= 0, got {history_depth}")
        self.rng = rng or HardwareRng()
        self.phv_bits = phv_bits
        self.phv_threshold = phv_threshold
        self.history_depth = history_depth
        self._pages: dict[int, PageSecurityState] = {}
        self.total_resets = 0

    def __contains__(self, page: int) -> bool:
        return page in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def state(self, page: int) -> PageSecurityState:
        """Fetch (mapping on first touch) the security state of ``page``."""
        existing = self._pages.get(page)
        if existing is not None:
            return existing
        root = self.rng.next_u64()
        fresh = PageSecurityState(root=root, mapping_root=root)
        self._pages[page] = fresh
        return fresh

    def root(self, page: int) -> int:
        """Current root sequence number of ``page``."""
        return self.state(page).root

    def counts_from_current_root(self, page: int, seqnum: int) -> bool:
        """Distance test: does ``seqnum`` count from the page's current root?

        "To decide whether a sequence number started its count from the
        current root sequence number, its distance to the current root is
        calculated.  If the distance is negative or too large, the sequence
        number is considered counting from an old root." (Section 3.2)
        """
        return seqnum_distance(seqnum, self.state(page).root) < DISTANCE_WINDOW

    def reset_root(self, page: int) -> int:
        """Re-randomize the page's root; returns the new root."""
        state = self.state(page)
        if self.history_depth:
            state.old_roots = ((state.root,) + state.old_roots)[: self.history_depth]
        state.root = self.rng.next_u64()
        state.phv = 0
        state.phv_fill = 0
        state.resets += 1
        self.total_resets += 1
        return state.root

    def record_prediction(self, page: int, hit: bool) -> bool:
        """Shift a prediction outcome into the PHV; reset root if saturated.

        Returns True if the page root was reset as a consequence.
        """
        state = self.state(page)
        mask = (1 << self.phv_bits) - 1
        state.phv = ((state.phv << 1) | (0 if hit else 1)) & mask
        state.phv_fill = min(state.phv_fill + 1, self.phv_bits)
        if (
            state.phv_fill >= self.phv_bits
            and bin(state.phv).count("1") >= self.phv_threshold
        ):
            self.reset_root(page)
            return True
        return False

    def pages(self) -> list[int]:
        """All page numbers ever mapped (diagnostics)."""
        return sorted(self._pages)
