"""OTP construction for cache-line memory blocks (Figure 3).

A 32-byte cache line is covered by two 128-bit AES outputs; the input block
for each half is the 64-bit virtual address of that 16-byte unit
concatenated with the line's 64-bit sequence number.  Because the address
participates, lines sharing a sequence number (e.g. all lines of a freshly
mapped page) still receive distinct pads — the security argument of
Section 4.

Performance: all AES inputs needed by one call — every block of a line,
and every line-pad of a speculative candidate set — are assembled up front
and pushed through :meth:`~repro.crypto.aes.AES.encrypt_blocks` as a single
batch.  Computed pads land in a bounded
:class:`~repro.crypto.engine.PadCache` keyed ``(key_id, address, seqnum)``,
so repeated probes of the same candidate (re-fetches of an unchanged line,
a predictor guessing the sequence number a later write-back reaches) never
recompute; pads are pure functions of their key, so memo entries cannot go
stale.
"""

from __future__ import annotations

from repro.crypto.aes import AES, BLOCK_SIZE
from repro.crypto.ctr import make_counter_block, xor_bytes
from repro.crypto.engine import PadCache
from repro.crypto.sha256 import sha256
from repro.telemetry.profile import profile_scope

__all__ = ["OtpGenerator", "blocks_per_line", "DEFAULT_PAD_CACHE_ENTRIES"]

#: Default capacity (in line pads) of a generator's memo; 0 disables it.
DEFAULT_PAD_CACHE_ENTRIES = 4096


def blocks_per_line(line_bytes: int) -> int:
    """How many AES blocks cover one cache line."""
    if line_bytes <= 0 or line_bytes % BLOCK_SIZE:
        raise ValueError(
            f"line_bytes must be a positive multiple of {BLOCK_SIZE}, got {line_bytes}"
        )
    return line_bytes // BLOCK_SIZE


class OtpGenerator:
    """Functional pad generator bound to one process key.

    Parameters
    ----------
    key:
        AES key (16/24/32 bytes).
    line_bytes:
        Cache-line size; every pad is this long.
    pad_cache:
        Optional externally owned :class:`~repro.crypto.engine.PadCache`
        (sharable between generators holding different keys — entries are
        key_id-disambiguated).  Defaults to a private cache of
        :data:`DEFAULT_PAD_CACHE_ENTRIES` line pads.
    """

    def __init__(
        self,
        key: bytes,
        line_bytes: int = 32,
        pad_cache: PadCache | None = None,
    ):
        self._cipher = AES(key)
        self.line_bytes = line_bytes
        self.blocks = blocks_per_line(line_bytes)
        self.pad_cache = (
            pad_cache
            if pad_cache is not None
            else PadCache(DEFAULT_PAD_CACHE_ENTRIES)
        )
        # Short stable identifier separating this key's memo entries from
        # any other generator sharing the cache.
        self._key_id = sha256(b"otp-key-id" + key)[:8]

    @property
    def memo_enabled(self) -> bool:
        """True when the pad memo is active (capacity > 0)."""
        return self.pad_cache.enabled

    def _pad_inputs(self, line_address: int, seqnum: int) -> bytes:
        """Concatenated AES inputs covering one line."""
        return b"".join(
            make_counter_block(line_address + index * BLOCK_SIZE, seqnum)
            for index in range(self.blocks)
        )

    def pad(self, line_address: int, seqnum: int) -> bytes:
        """The full one-time pad for the line at ``line_address``."""
        key = (self._key_id, line_address, seqnum)
        cached = self.pad_cache.get(key)
        if cached is not None:
            return cached
        with profile_scope("crypto.batch_aes"):
            pad = self._cipher.encrypt_blocks(
                self._pad_inputs(line_address, seqnum)
            )
        self.pad_cache.put(key, pad)
        return pad

    def pads(self, line_address: int, seqnums) -> dict[int, bytes]:
        """Pads for a whole candidate set of sequence numbers, one batch.

        This is the speculative-probe entry point: the predictor's ``depth``
        guesses become ``depth x blocks_per_line`` AES inputs encrypted in a
        single :meth:`~repro.crypto.aes.AES.encrypt_blocks` call, skipping
        any candidate the memo already holds.
        """
        result: dict[int, bytes] = {}
        missing: list[int] = []
        with profile_scope("otp.pad_memo"):
            for seqnum in seqnums:
                if seqnum in result:
                    continue
                cached = self.pad_cache.get((self._key_id, line_address, seqnum))
                if cached is not None:
                    result[seqnum] = cached
                else:
                    missing.append(seqnum)
                    result[seqnum] = b""  # placeholder keeps candidate order
        if missing:
            with profile_scope("crypto.batch_aes"):
                batch = self._cipher.encrypt_blocks(
                    b"".join(self._pad_inputs(line_address, s) for s in missing)
                )
            for index, seqnum in enumerate(missing):
                pad = batch[index * self.line_bytes: (index + 1) * self.line_bytes]
                self.pad_cache.put((self._key_id, line_address, seqnum), pad)
                result[seqnum] = pad
        return result

    def seal(self, line_address: int, seqnum: int, plaintext: bytes) -> bytes:
        """Encrypt one line for write-back."""
        if len(plaintext) != self.line_bytes:
            raise ValueError(
                f"plaintext must be {self.line_bytes} bytes, got {len(plaintext)}"
            )
        return xor_bytes(plaintext, self.pad(line_address, seqnum))

    def open(self, line_address: int, seqnum: int, ciphertext: bytes) -> bytes:
        """Decrypt one fetched line (XOR with the same pad)."""
        if len(ciphertext) != self.line_bytes:
            raise ValueError(
                f"ciphertext must be {self.line_bytes} bytes, got {len(ciphertext)}"
            )
        return xor_bytes(ciphertext, self.pad(line_address, seqnum))
