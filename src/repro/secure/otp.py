"""OTP construction for cache-line memory blocks (Figure 3).

A 32-byte cache line is covered by two 128-bit AES outputs; the input block
for each half is the 64-bit virtual address of that 16-byte unit
concatenated with the line's 64-bit sequence number.  Because the address
participates, lines sharing a sequence number (e.g. all lines of a freshly
mapped page) still receive distinct pads — the security argument of
Section 4.
"""

from __future__ import annotations

from repro.crypto.aes import AES, BLOCK_SIZE
from repro.crypto.ctr import make_counter_block, xor_bytes

__all__ = ["OtpGenerator", "blocks_per_line"]


def blocks_per_line(line_bytes: int) -> int:
    """How many AES blocks cover one cache line."""
    if line_bytes <= 0 or line_bytes % BLOCK_SIZE:
        raise ValueError(
            f"line_bytes must be a positive multiple of {BLOCK_SIZE}, got {line_bytes}"
        )
    return line_bytes // BLOCK_SIZE


class OtpGenerator:
    """Functional pad generator bound to one process key."""

    def __init__(self, key: bytes, line_bytes: int = 32):
        self._cipher = AES(key)
        self.line_bytes = line_bytes
        self.blocks = blocks_per_line(line_bytes)

    def pad(self, line_address: int, seqnum: int) -> bytes:
        """The full one-time pad for the line at ``line_address``."""
        pieces = []
        for block_index in range(self.blocks):
            address = line_address + block_index * BLOCK_SIZE
            pieces.append(
                self._cipher.encrypt_block(make_counter_block(address, seqnum))
            )
        return b"".join(pieces)

    def seal(self, line_address: int, seqnum: int, plaintext: bytes) -> bytes:
        """Encrypt one line for write-back."""
        if len(plaintext) != self.line_bytes:
            raise ValueError(
                f"plaintext must be {self.line_bytes} bytes, got {len(plaintext)}"
            )
        return xor_bytes(plaintext, self.pad(line_address, seqnum))

    def open(self, line_address: int, seqnum: int, ciphertext: bytes) -> bytes:
        """Decrypt one fetched line (XOR with the same pad)."""
        if len(ciphertext) != self.line_bytes:
            raise ValueError(
                f"ciphertext must be {self.line_bytes} bytes, got {len(ciphertext)}"
            )
        return xor_bytes(ciphertext, self.pad(line_address, seqnum))
