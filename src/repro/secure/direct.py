"""Direct (non-counter-mode) memory encryption — the pre-CTR baseline.

Section 2.2 motivates counter mode against "other regular block cipher
based direct memory encryption schemes that serialize line fetching and
decryption": with the cache line itself as the cipher input, decryption
cannot begin until the data has arrived, so every miss pays the full AES
pipeline latency *after* the memory latency — there is nothing to overlap
and nothing to predict.

:class:`DirectEncryptionController` models exactly that scheme (XEX-style
tweakable block encryption, tweak derived from the line address so
identical plaintexts at different addresses differ).  It needs no
counters: fetches skip the sequence-number transfer, write-backs skip the
counter update.  The ``direct_encryption`` scheme in the experiment runner
lets the figures show how far even the *unassisted* counter-mode baseline
has already come before prediction enters.

Security note: unlike counter mode, deterministic direct encryption leaks
equality of a line's values over time (no per-write freshness).  That is
one of the reasons the field moved to counters; the class exists as a
performance comparison point, not a recommendation.
"""

from __future__ import annotations

from repro.crypto.aes import BLOCK_SIZE
from repro.crypto.ctr import make_counter_block, xor_bytes
from repro.secure.controller import (
    FetchClass,
    FetchResult,
    SecureMemoryController,
    WritebackResult,
)

__all__ = ["DirectEncryptionController"]


class DirectEncryptionController(SecureMemoryController):
    """Serializing direct-encryption memory protection."""

    def fetch_line(self, now: int, address: int) -> FetchResult:
        """Fetch, then decrypt serially — nothing can overlap."""
        line = self.address_map.line_address(address)
        # No counter to fetch: the line is the only payload.
        line_ready = self.dram.read(now, line, self.address_map.line_bytes)
        # Decryption starts only once the ciphertext is on-chip.
        pad_ready = self.engine.issue(line_ready, self.blocks, speculative=False)[-1]
        data_ready = pad_ready

        plaintext = self._decrypt_direct(line) if self.functional else None

        self.stats.fetches += 1
        self.stats.class_counts[FetchClass.NEITHER] += 1
        self.stats.record_fetch_latency(data_ready - now, data_ready - line_ready)
        if self.tracer.enabled:
            address = f"{line:#x}"
            self.tracer.span(
                "fetch", now, data_ready, track="controller",
                category="secure", address=address, fetch_class="direct",
            )
            self.tracer.span(
                "dram", now, line_ready, track="dram", category="memory",
                address=address,
            )
            self.tracer.span(
                "decrypt (serial)", line_ready, pad_ready, track="crypto",
                category="crypto", address=address,
            )
            # Direct encryption has nothing to overlap: the flow arrow runs
            # fetch -> serial decrypt -> done, making the serialization
            # visually obvious next to a counter-mode lane in --diff view.
            flow = self.tracer.next_flow_id()
            self.tracer.flow_begin(
                "serial", now, flow, track="controller", address=address,
            )
            self.tracer.flow_step(
                "serial", line_ready, flow, track="crypto", address=address,
            )
            self.tracer.flow_end(
                "serial", data_ready, flow, track="controller", address=address,
            )
            self.tracer.counter(
                "pred.queue_depth", now, track="controller", guesses=0,
            )
        return FetchResult(
            address=line,
            seqnum=0,
            issue_time=now,
            seqnum_ready=line_ready,
            line_ready=line_ready,
            pad_ready=pad_ready,
            data_ready=data_ready,
            predicted=False,
            seqcache_hit=False,
            fetch_class=FetchClass.NEITHER,
            plaintext=plaintext,
        )

    def writeback_line(
        self, now: int, address: int, plaintext: bytes | None = None
    ) -> WritebackResult:
        """Encrypt and post the write; no counters are involved."""
        line = self.address_map.line_address(address)
        pad_done = self.engine.issue(now, self.blocks, speculative=False)[-1]
        completion = self.dram.write(pad_done, line, self.address_map.line_bytes)

        if self.functional:
            if plaintext is None:
                raise ValueError("functional mode write-back requires plaintext")
            self.backing.write_line(line, self._encrypt_direct(line, plaintext))

        self.stats.writebacks += 1
        return WritebackResult(
            address=line, seqnum=0, completion_time=completion, rebased=False
        )

    # -- functional XEX-style encryption ---------------------------------------

    def _tweak(self, block_address: int) -> bytes:
        assert self.otp is not None
        return self.otp._cipher.encrypt_block(make_counter_block(block_address, 0))

    def _encrypt_direct(self, line: int, plaintext: bytes) -> bytes:
        assert self.otp is not None
        cipher = self.otp._cipher
        out = []
        for index in range(self.blocks):
            start = index * BLOCK_SIZE
            tweak = self._tweak(line + start)
            block = xor_bytes(plaintext[start: start + BLOCK_SIZE], tweak)
            out.append(xor_bytes(cipher.encrypt_block(block), tweak))
        return b"".join(out)

    def _decrypt_direct(self, line: int) -> bytes:
        assert self.otp is not None
        if not self.backing.has_line(line):
            return bytes(self.address_map.line_bytes)
        cipher = self.otp._cipher
        ciphertext = self.backing.read_line(line)
        out = []
        for index in range(self.blocks):
            start = index * BLOCK_SIZE
            tweak = self._tweak(line + start)
            block = xor_bytes(ciphertext[start: start + BLOCK_SIZE], tweak)
            out.append(xor_bytes(cipher.decrypt_block(block), tweak))
        return b"".join(out)
