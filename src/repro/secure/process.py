"""Multiprogramming: per-process keys and protected security contexts.

Section 2.2 assumes "in a multiprogrammed environment, dynamic data of each
process is protected with different cryptographic keys" and that the
trusted kernel preserves each process's security context — root sequence
numbers, prediction state — across context switches.  This module supplies
that machinery:

* :class:`ProcessContext` — everything private to one protected process:
  its key (functional mode), its page-security table (roots, PHV), its
  predictor (including LOR / range-table state), its pad-reuse auditor.
* :class:`SecureProcessManager` — owns the *shared* physical resources
  (crypto engine, DRAM, sequence-number cache, untrusted RAM) and swaps
  process contexts in and out, counting switches.  Each process sees its
  own :class:`~repro.secure.controller.SecureMemoryController` bound to
  the shared hardware.

Address spaces are disambiguated with an ASID folded into the upper
address bits, mirroring how physical placement keeps processes' lines (and
their counters) distinct in RAM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.engine import CryptoEngine
from repro.crypto.rng import HardwareRng
from repro.memory.address import AddressMap, DEFAULT_ADDRESS_MAP
from repro.memory.backing import BackingStore
from repro.memory.dram import Dram
from repro.secure.controller import SecureMemoryController
from repro.secure.predictors import OtpPredictor
from repro.secure.seqcache import SequenceNumberCache
from repro.secure.seqnum import PageSecurityTable

__all__ = ["ProcessContext", "SecureProcessManager"]

_ASID_SHIFT = 44  # virtual addresses stay below 2^44 per process


@dataclass
class ProcessContext:
    """The protected, kernel-managed security state of one process."""

    pid: int
    controller: SecureMemoryController
    switches_in: int = 0

    @property
    def page_table(self) -> PageSecurityTable:
        """The process's per-page security state."""
        return self.controller.page_table

    @property
    def predictor(self) -> OtpPredictor:
        """The process's OTP predictor (state included in the context)."""
        return self.controller.predictor

    def translate(self, address: int) -> int:
        """Fold the ASID into the address (per-process placement)."""
        if address < 0 or address >= (1 << _ASID_SHIFT):
            raise ValueError(
                f"address {address:#x} outside the per-process window"
            )
        return (self.pid << _ASID_SHIFT) | address


class SecureProcessManager:
    """Shared hardware + swappable per-process security contexts."""

    def __init__(
        self,
        engine: CryptoEngine | None = None,
        dram: Dram | None = None,
        seqcache: SequenceNumberCache | None = None,
        backing: BackingStore | None = None,
        address_map: AddressMap = DEFAULT_ADDRESS_MAP,
        seed: int = 1,
    ):
        self.engine = engine if engine is not None else CryptoEngine()
        self.dram = dram if dram is not None else Dram()
        self.seqcache = seqcache
        self.backing = backing if backing is not None else BackingStore(address_map)
        self.address_map = address_map
        self._seed = seed
        self._processes: dict[int, ProcessContext] = {}
        self._active: ProcessContext | None = None
        self.context_switches = 0

    def create_process(
        self,
        pid: int,
        key: bytes | None = None,
        predictor_factory=None,
        integrity: bool = False,
    ) -> ProcessContext:
        """Register a protected process with its own key and context."""
        if pid in self._processes:
            raise ValueError(f"pid {pid} already exists")
        if not 0 <= pid < (1 << 16):
            raise ValueError(f"pid must fit in 16 bits, got {pid}")
        table = PageSecurityTable(rng=HardwareRng(self._seed * 65537 + pid))
        predictor = predictor_factory(table) if predictor_factory else None
        controller = SecureMemoryController(
            engine=self.engine,
            dram=self.dram,
            page_table=table,
            predictor=predictor,
            seqcache=self.seqcache,
            key=key,
            integrity=integrity,
            backing=self.backing,
            address_map=self.address_map,
        )
        context = ProcessContext(pid=pid, controller=controller)
        self._processes[pid] = context
        if self._active is None:
            self._active = context
            context.switches_in += 1
        return context

    @property
    def active(self) -> ProcessContext:
        """The currently scheduled process context."""
        if self._active is None:
            raise RuntimeError("no process has been created")
        return self._active

    def switch_to(self, pid: int) -> ProcessContext:
        """Context switch: activate another process's security context.

        The per-process state (roots, PHV, LOR, range tables, keys) is
        preserved exactly — that is the Section 2.2 assumption — while the
        shared physical structures (engine pipeline, DRAM row buffers,
        sequence-number cache contents) carry over and interfere, which is
        the effect the multiprogramming experiment measures.
        """
        context = self._processes.get(pid)
        if context is None:
            raise KeyError(f"unknown pid {pid}")
        if context is not self._active:
            self.context_switches += 1
            context.switches_in += 1
            self._active = context
        return context

    def fetch(self, now: int, address: int):
        """Fetch through the active process's context (ASID-translated)."""
        context = self.active
        return context.controller.fetch_line(now, context.translate(address))

    def writeback(self, now: int, address: int, plaintext: bytes | None = None):
        """Write back through the active process's context."""
        context = self.active
        return context.controller.writeback_line(
            now, context.translate(address), plaintext
        )

    def processes(self) -> list[int]:
        """All registered pids."""
        return sorted(self._processes)
