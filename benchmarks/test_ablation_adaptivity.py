"""Ablation — the adaptive reset mechanism (Section 3.2).

Compares plain regular prediction (no PHV resets), the paper's adaptive
configuration, a sweep of PHV thresholds, and the root-history
memoization of Section 7.3 (which the paper measured but did not plot,
reporting "only marginal improvement" — reproduced here).
"""

from repro.crypto.rng import HardwareRng
from repro.cpu.system import replay_miss_trace
from repro.experiments.config import TABLE1_256K
from repro.experiments.runner import apply_preseed, get_miss_trace
from repro.secure.controller import SecureMemoryController
from repro.secure.predictors import RegularOtpPredictor
from repro.secure.seqnum import PageSecurityTable

BENCHMARKS = ("twolf", "mcf", "swim")
REFS = 20_000


def _run(benchmark_name, adaptive, threshold=12, history=0):
    miss_trace, preseed = get_miss_trace(benchmark_name, TABLE1_256K, references=REFS)
    table = PageSecurityTable(
        rng=HardwareRng(1), phv_threshold=threshold, history_depth=history
    )
    controller = SecureMemoryController(
        page_table=table,
        predictor=RegularOtpPredictor(
            table, depth=5, adaptive=adaptive, use_root_history=history > 0
        ),
    )
    apply_preseed(controller, preseed)
    return replay_miss_trace(miss_trace, controller, core=TABLE1_256K.core)


def run_sweep():
    rows = {}
    for name in BENCHMARKS:
        rows[(name, "static")] = _run(name, adaptive=False)
        rows[(name, "adaptive")] = _run(name, adaptive=True)
        rows[(name, "thresh4")] = _run(name, adaptive=True, threshold=4)
        rows[(name, "thresh16")] = _run(name, adaptive=True, threshold=16)
        rows[(name, "history1")] = _run(name, adaptive=True, history=1)
        rows[(name, "history2")] = _run(name, adaptive=True, history=2)
    return rows


def test_ablation_adaptivity(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print("Ablation: adaptive reset & root history (regular prediction, depth 5)")
    print(f"{'bench':<8}{'variant':<10}{'hit rate':>10}{'resets':>8}")
    for (name, variant), metrics in rows.items():
        print(
            f"{name:<8}{variant:<10}{metrics.prediction_rate:>10.3f}"
            f"{metrics.root_resets:>8}"
        )

    for name in BENCHMARKS:
        # Root history never hurts, and per the paper helps only marginally
        # (well under the two-level/context gains of ~10 points).
        base = rows[(name, "adaptive")].prediction_rate
        with_history = rows[(name, "history1")].prediction_rate
        assert with_history >= base - 1e-9
        assert with_history - base < 0.10
        # The static variant performs no resets at all.
        assert rows[(name, "static")].root_resets == 0
