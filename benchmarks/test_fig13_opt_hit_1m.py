"""Figure 13 — hit rates: two-level vs context vs regular, 1MB L2.

Paper: ~95% (two-level) and near-perfect (context) persist at 1MB.
"""

from repro.experiments.report import series_average


def test_figure13(record_figure):
    from repro.experiments.figures import figure13

    def check(result):
        regular = series_average(result.series["Regular"])
        two_level = series_average(result.series["Two_Level"])
        context = series_average(result.series["Context"])
        assert context > regular
        assert two_level > regular

    record_figure(figure13, check)
