"""The paper's quantitative claims, checked in one place.

Runs the figures the claims reference and evaluates every statement from
:mod:`repro.experiments.paper_data`, printing paper-vs-measured deltas for
the averages the text reports.
"""

from repro.experiments.figures import figure7, figure8, figure10, figure12, figure13, figure14
from repro.experiments.paper_data import PAPER_AVERAGES, check_claims
from repro.experiments.report import series_average


def run_claim_figures():
    return {
        "Figure 7": figure7(),
        "Figure 8": figure8(),
        "Figure 10": figure10(),
        "Figure 12": figure12(),
        "Figure 13": figure13(),
        "Figure 14": figure14(),
    }


def test_paper_claims(benchmark):
    figures = benchmark.pedantic(run_claim_figures, rounds=1, iterations=1)

    print()
    print("paper-reported averages vs measured:")
    print(f"{'figure':<12}{'series':<14}{'paper':>8}{'measured':>10}{'delta':>8}")
    for figure_id, expectations in PAPER_AVERAGES.items():
        result = figures[figure_id]
        for series_name, paper_value in expectations.items():
            measured = series_average(result.series[series_name])
            print(
                f"{figure_id:<12}{series_name:<14}{paper_value:>8.2f}"
                f"{measured:>10.3f}{measured - paper_value:>+8.3f}"
            )
            # Reproduction tolerance: within 10 points of the paper's
            # averages everywhere except the counter caches, whose absolute
            # level depends on workload internals the text does not pin down.
            if "cache" not in series_name.lower():
                assert abs(measured - paper_value) < 0.10, (figure_id, series_name)

    print()
    print("qualitative claims:")
    outcomes = check_claims(figures)
    assert outcomes, "no claims were evaluated"
    for claim, holds in outcomes:
        print(f"  [{'ok' if holds else 'FAIL'}] §{claim.section}: {claim.text}")
    assert all(holds for _, holds in outcomes)
