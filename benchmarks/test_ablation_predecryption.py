"""Ablation — pre-decryption vs OTP prediction vs the hybrid (Section 9.2).

The paper argues OTP prediction beats pre-decryption on bus behaviour
("fetches only those lines absolutely required, thus no throttling on the
bus") and that the two compose.  This bench quantifies all three claims:
IPC, prefetch accuracy, and the extra DRAM traffic each scheme induces.
"""

from repro.experiments.runner import make_controller, apply_preseed, get_miss_trace, SCHEMES
from repro.experiments.config import TABLE1_256K
from repro.cpu.system import replay_miss_trace

BENCHMARKS = ("swim", "twolf")   # streaming-friendly vs pointer-heavy
SCHEME_NAMES = ("baseline", "predecrypt", "pred_regular", "hybrid_predecrypt", "oracle")
REFS = 20_000


def run_comparison():
    rows = {}
    for name in BENCHMARKS:
        miss_trace, preseed = get_miss_trace(name, TABLE1_256K, references=REFS)
        for scheme in SCHEME_NAMES:
            controller = make_controller(SCHEMES[scheme], TABLE1_256K)
            apply_preseed(controller, preseed)
            metrics = replay_miss_trace(
                miss_trace, controller, core=TABLE1_256K.core, scheme=scheme
            )
            rows[(name, scheme)] = (metrics, controller)
    return rows


def test_ablation_predecryption(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print()
    print("Ablation: pre-decryption vs OTP prediction vs hybrid")
    print(f"{'bench':<8}{'scheme':<20}{'IPC':>9}{'dram reads':>12}{'pf acc':>8}")
    for (name, scheme), (metrics, controller) in rows.items():
        accuracy = (
            controller.predecrypt_stats.accuracy
            if hasattr(controller, "predecrypt_stats")
            else 0.0
        )
        print(
            f"{name:<8}{scheme:<20}{metrics.ipc:>9.4f}"
            f"{controller.dram.stats.reads:>12}{accuracy:>8.3f}"
        )

    for name in BENCHMARKS:
        baseline_ipc = rows[(name, "baseline")][0].ipc
        predecrypt_ipc = rows[(name, "predecrypt")][0].ipc
        pred_ipc = rows[(name, "pred_regular")][0].ipc
        hybrid_ipc = rows[(name, "hybrid_predecrypt")][0].ipc
        # Both techniques beat the baseline; the hybrid beats each alone.
        assert predecrypt_ipc > baseline_ipc
        assert pred_ipc > baseline_ipc
        assert hybrid_ipc >= max(predecrypt_ipc, pred_ipc) * 0.995
        # Prediction adds NO memory traffic; pre-decryption always adds
        # some (every mispredicted stride is a wasted bus transfer).
        baseline_reads = rows[(name, "baseline")][1].dram.stats.reads
        assert rows[(name, "pred_regular")][1].dram.stats.reads == baseline_reads
        assert rows[(name, "predecrypt")][1].dram.stats.reads > baseline_reads
