"""Figure 15 — normalized IPC: two-level vs context vs regular, 256KB L2.

Paper: the optimizations add up to ~7% IPC on top of regular prediction
for several benchmarks.
"""

from repro.experiments.report import series_average


def test_figure15(record_figure):
    from repro.experiments.figures import figure15

    def check(result):
        regular = series_average(result.series["Regular"])
        two_level = series_average(result.series["Two_Level"])
        context = series_average(result.series["Context"])
        assert two_level > regular
        assert context > regular
        # The optimizations land within a few percent of the oracle.
        assert context > 0.9
        for series in result.series.values():
            assert all(v <= 1.0 + 1e-9 for v in series.values())

    record_figure(figure15, check)
