"""Ablation — multiprogramming and context switches (Section 2.2 / 3).

The paper notes the sequence-number cache's hit rate "can be substantially
reduced when the working set is large or in-between context switches",
while prediction state is part of the per-process protected context and
survives switches.  Two processes time-share the machine here; the shared
counter cache suffers cross-process eviction, the per-process predictors
do not.
"""

from repro.crypto.rng import HardwareRng
from repro.experiments.config import TABLE1_256K
from repro.experiments.runner import get_miss_trace
from repro.secure.predictors import RegularOtpPredictor
from repro.secure.process import SecureProcessManager
from repro.secure.seqcache import SequenceNumberCache

WORKLOADS = ("twolf", "parser")   # two counter-cache-friendly processes
QUANTUM_EVENTS = 200              # miss events per scheduling quantum
REFS = 20_000
_MASK64 = (1 << 64) - 1


def _preseed(manager, context, preseed):
    for line, distance in preseed.items():
        translated = context.translate(line)
        page = manager.address_map.page_number(translated)
        root = context.page_table.state(page).mapping_root
        manager.backing.write_seqnum(translated, (root + distance) & _MASK64)


def _event_stream(benchmark_name):
    miss_trace, preseed = get_miss_trace(benchmark_name, TABLE1_256K, references=REFS)
    events = []
    for event in miss_trace.events:
        events.extend(("fetch", a) for a in event.fetch_addresses)
        events.extend(("writeback", a) for a in event.writeback_addresses)
    return events, preseed


def run_timeshared(quantum):
    manager = SecureProcessManager(
        seqcache=SequenceNumberCache(128 * 1024), seed=7
    )
    streams = {}
    for pid, name in enumerate(WORKLOADS, start=1):
        context = manager.create_process(
            pid, predictor_factory=lambda t: RegularOtpPredictor(t)
        )
        events, preseed = _event_stream(name)
        _preseed(manager, context, preseed)
        streams[pid] = events

    now = 0
    cursors = {pid: 0 for pid in streams}
    while any(cursors[pid] < len(streams[pid]) for pid in streams):
        for pid in streams:
            manager.switch_to(pid)
            start = cursors[pid]
            for kind, address in streams[pid][start: start + quantum]:
                if kind == "fetch":
                    manager.fetch(now, address)
                else:
                    manager.writeback(now, address)
                now += 50
            cursors[pid] = start + quantum
    return manager


def test_ablation_multiprogramming(benchmark):
    manager = benchmark.pedantic(
        run_timeshared, args=(QUANTUM_EVENTS,), rounds=1, iterations=1
    )
    print()
    print("Ablation: two time-shared processes, 128KB shared counter cache")
    print(f"context switches: {manager.context_switches}")
    print(f"{'pid':<5}{'pred rate':>10}{'seq$ rate':>10}")
    rates = []
    for pid in manager.processes():
        context = manager.switch_to(pid)
        predictor_rate = context.predictor.stats.hit_rate
        rates.append(predictor_rate)
        print(f"{pid:<5}{predictor_rate:>10.3f}{manager.seqcache.hit_rate:>10.3f}")

    assert manager.context_switches > 10
    # Prediction keeps working across switches (state is per-process)...
    assert all(rate > 0.4 for rate in rates)
    # ...while the shared counter cache suffers cross-process eviction and
    # lands clearly below the predictors.
    assert manager.seqcache.hit_rate < min(rates)
