"""Ablation — direct encryption vs counter mode (Section 2's motivation).

"Fast protection schemes based on counter mode were introduced ... as
counter mode allows parallel execution of encrypted data fetching and
decryption pad generation."  This bench quantifies the whole ladder:
direct encryption (fully serialized) < CTR baseline (overlaps after the
counter arrives) < CTR + prediction < oracle.
"""

from repro.experiments.report import series_average
from repro.experiments.sweep import run_grid

BENCHMARKS = ("swim", "mcf", "gzip")
SCHEMES = ["oracle", "direct_encryption", "baseline", "pred_regular", "pred_context"]
REFS = 20_000


def run_ladder():
    return run_grid(list(BENCHMARKS), SCHEMES, references=REFS)


def test_ablation_direct_encryption(benchmark):
    grid = benchmark.pedantic(run_ladder, rounds=1, iterations=1)
    table = grid.table(None, normalize_to="oracle",
                       title="normalized IPC ladder (oracle = 1.0)")
    print()
    print(f"{'scheme':<20}" + "".join(f"{b:>8}" for b in BENCHMARKS) + f"{'avg':>8}")
    for scheme in SCHEMES[1:]:
        row = f"{scheme:<20}"
        for name in BENCHMARKS:
            row += f"{table.series[scheme][name]:>8.3f}"
        row += f"{series_average(table.series[scheme]):>8.3f}"
        print(row)

    for name in BENCHMARKS:
        direct = table.series["direct_encryption"][name]
        ctr = table.series["baseline"][name]
        regular = table.series["pred_regular"][name]
        context = table.series["pred_context"][name]
        assert direct < ctr < regular < 1.0 + 1e-9, name
        assert context > regular * 0.99, name
