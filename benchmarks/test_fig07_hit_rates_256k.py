"""Figure 7 — sequence-number hit rates, 256KB L2, long window.

Paper: 128KB/512KB sequence-number caches plateau while adaptive OTP
prediction averages ~82%, beating both.
"""

from repro.experiments.report import series_average


def test_figure7(record_figure):
    from repro.experiments.figures import figure7

    def check(result):
        pred = series_average(result.series["Pred"])
        cache_128 = series_average(result.series["128K_cache"])
        cache_512 = series_average(result.series["512K_cache"])
        # Paper shape: prediction above both cache sizes, 512K >= 128K.
        assert pred > cache_512 >= cache_128 * 0.98
        assert pred > 0.6

    record_figure(figure7, check)
