"""Table 1 — processor model parameters.

Prints the machine-parameter table and validates that the two evaluated
configurations (256KB and 1MB L2) are wired exactly as the paper states.
"""


def test_table1(benchmark):
    from repro.experiments.config import TABLE1_1M, TABLE1_256K
    from repro.experiments.figures import table1

    result = benchmark.pedantic(table1, rounds=1, iterations=1)
    rows = result.metadata["rows"]
    print()
    width = max(len(name) for name, _ in rows)
    print("Table 1: Processor model parameters")
    print("=" * 40)
    for name, value in rows:
        print(f"{name:<{width}}  {value}")

    # Cross-check the table against the live configurations.
    assert TABLE1_256K.hierarchy.l2_size == 256 * 1024
    assert TABLE1_1M.hierarchy.l2_size == 1024 * 1024
    assert TABLE1_256K.engine.latency_ns == 96.0
    assert TABLE1_256K.prediction.depth == 5
    assert TABLE1_256K.prediction.swing == 3
    assert TABLE1_256K.prediction.phv_bits == 16
    assert TABLE1_256K.prediction.phv_threshold == 12
    assert TABLE1_256K.dram.bus.bus_mhz == 200.0
    assert TABLE1_256K.dram.bus.width_bytes == 8
