"""Ablation — crypto-engine latency sensitivity (Section 3.1's assumption).

The scheme's headline result assumes OTP generation latency is comparable
to memory latency ("given that the OTP generation latency is less than the
memory latency, we can support memory protection without loss of
performance").  Sweeping the AES pipeline latency shows when that breaks:
a slow engine leaves exposed decryption latency even with perfect
prediction; a fast one makes even the baseline cheap.
"""

import dataclasses

from repro.crypto.engine import CryptoEngine, CryptoEngineConfig
from repro.crypto.rng import HardwareRng
from repro.cpu.system import replay_miss_trace
from repro.experiments.config import TABLE1_256K
from repro.experiments.runner import apply_preseed, get_miss_trace
from repro.secure.controller import SecureMemoryController
from repro.secure.predictors import ContextOtpPredictor, NullPredictor
from repro.secure.seqnum import PageSecurityTable

BENCHMARK = "swim"
LATENCIES_NS = (24, 48, 96, 192, 384)
REFS = 20_000


def _run(latency_ns, predicted):
    miss_trace, preseed = get_miss_trace(BENCHMARK, TABLE1_256K, references=REFS)
    engine_config = dataclasses.replace(
        TABLE1_256K.engine, stage_latency_ns=latency_ns / 96.0
    )
    table = PageSecurityTable(rng=HardwareRng(1))
    predictor = ContextOtpPredictor(table) if predicted else NullPredictor(table)
    controller = SecureMemoryController(
        engine=CryptoEngine(engine_config),
        page_table=table,
        predictor=predictor,
    )
    apply_preseed(controller, preseed)
    return replay_miss_trace(miss_trace, controller, core=TABLE1_256K.core)


def run_sweep():
    return {
        (latency, kind): _run(latency, kind == "context")
        for latency in LATENCIES_NS
        for kind in ("baseline", "context")
    }


def test_ablation_engine_latency(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(f"Ablation: AES pipeline latency ({BENCHMARK})")
    print(f"{'ns':>5}{'baseline IPC':>14}{'context IPC':>13}{'gain':>8}")
    for latency in LATENCIES_NS:
        base = rows[(latency, 'baseline')].ipc
        pred = rows[(latency, 'context')].ipc
        print(f"{latency:>5}{base:>14.4f}{pred:>13.4f}{pred / base:>8.3f}")

    gains = [
        rows[(latency, "context")].ipc / rows[(latency, "baseline")].ipc
        for latency in LATENCIES_NS
    ]
    # Prediction always helps...
    assert all(gain > 1.0 for gain in gains)
    # ...and matters more as the engine gets slower relative to memory
    # (up to the point where the engine itself is the bottleneck).
    assert gains[2] > gains[0]
