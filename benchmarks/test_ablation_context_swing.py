"""Ablation — context-prediction swing (Section 7.4).

The paper fixes pred_swing = 3; this sweep shows the sensitivity: swing 0
reduces the LOR to a single extra probe, large swings buy little extra hit
rate but issue more speculative blocks per miss.
"""

from repro.crypto.rng import HardwareRng
from repro.cpu.system import replay_miss_trace
from repro.experiments.config import TABLE1_256K
from repro.experiments.runner import apply_preseed, get_miss_trace
from repro.secure.controller import SecureMemoryController
from repro.secure.predictors import ContextOtpPredictor
from repro.secure.seqnum import PageSecurityTable

BENCHMARKS = ("swim", "vpr")
SWINGS = (0, 1, 3, 6, 10)
REFS = 20_000


def run_sweep():
    rows = {}
    for name in BENCHMARKS:
        miss_trace, preseed = get_miss_trace(name, TABLE1_256K, references=REFS)
        for swing in SWINGS:
            table = PageSecurityTable(rng=HardwareRng(1))
            controller = SecureMemoryController(
                page_table=table,
                predictor=ContextOtpPredictor(table, depth=5, swing=swing),
            )
            apply_preseed(controller, preseed)
            rows[(name, swing)] = replay_miss_trace(
                miss_trace, controller, core=TABLE1_256K.core
            )
    return rows


def test_ablation_swing(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print("Ablation: context-prediction swing (depth 5)")
    print(f"{'bench':<8}{'swing':>6}{'hit rate':>10}{'guesses/miss':>14}")
    for (name, swing), metrics in rows.items():
        guesses = metrics.guesses_issued / max(1, metrics.prediction_lookups)
        print(f"{name:<8}{swing:>6}{metrics.prediction_rate:>10.3f}{guesses:>14.2f}")

    for name in BENCHMARKS:
        rates = [rows[(name, s)].prediction_rate for s in SWINGS]
        assert all(b >= a - 1e-9 for a, b in zip(rates, rates[1:]))
        # Swing 3 (the paper's choice) captures nearly all of the benefit.
        assert rows[(name, 3)].prediction_rate >= rates[-1] - 0.03
