"""Figure 9 — breakdown of coverage with a 32KB cache + prediction.

Paper: prediction uncovers opportunities the cache misses — the
prediction-only share dwarfs the cache-only share.
"""

from repro.experiments.report import series_average


def test_figure9(record_figure):
    from repro.experiments.figures import figure9

    def check(result):
        pred_only = series_average(result.series["Pred_Hit"])
        cache_only = series_average(result.series["Seq_Only"])
        assert pred_only > cache_only * 3
        # Stacked fractions of all fetches stay within [0, 1].
        for benchmark in result.benchmarks():
            total = sum(result.series[name][benchmark] for name in result.series)
            assert 0.0 <= total <= 1.0

    record_figure(figure9, check)
