"""Figure 16 — normalized IPC: two-level vs context vs regular, 1MB L2.

Paper: ~4% additional improvement for several benchmarks at 1MB.
"""

from repro.experiments.report import series_average


def test_figure16(record_figure):
    from repro.experiments.figures import figure16

    def check(result):
        regular = series_average(result.series["Regular"])
        two_level = series_average(result.series["Two_Level"])
        context = series_average(result.series["Context"])
        assert two_level >= regular
        assert context >= regular
        for series in result.series.values():
            assert all(v <= 1.0 + 1e-9 for v in series.values())

    record_figure(figure16, check)
