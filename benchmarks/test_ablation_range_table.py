"""Ablation — two-level range-table geometry (Section 7.2 / 8.1).

Sweeps the number of table entries (the paper uses 64, ~4KB with 4-bit
ranges) and the range width (2-bit vs 4-bit buckets), showing where the
two-level scheme's capacity limits bite.
"""

from repro.crypto.rng import HardwareRng
from repro.cpu.system import replay_miss_trace
from repro.experiments.config import TABLE1_256K
from repro.experiments.runner import apply_preseed, get_miss_trace
from repro.secure.controller import SecureMemoryController
from repro.secure.predictors import RangePredictionTable, TwoLevelOtpPredictor
from repro.secure.seqnum import PageSecurityTable

BENCHMARKS = ("swim", "twolf")
ENTRIES = (8, 32, 64, 256)
REFS = 20_000


def _run(name, entries, range_bits):
    miss_trace, preseed = get_miss_trace(name, TABLE1_256K, references=REFS)
    table = PageSecurityTable(rng=HardwareRng(1))
    controller = SecureMemoryController(
        page_table=table,
        predictor=TwoLevelOtpPredictor(
            table,
            depth=5,
            range_table=RangePredictionTable(entries=entries, range_bits=range_bits),
        ),
    )
    apply_preseed(controller, preseed)
    return replay_miss_trace(miss_trace, controller, core=TABLE1_256K.core)


def run_sweep():
    rows = {}
    for name in BENCHMARKS:
        for entries in ENTRIES:
            rows[(name, entries, 4)] = _run(name, entries, 4)
        rows[(name, 64, 2)] = _run(name, 64, 2)
    return rows


def test_ablation_range_table(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print("Ablation: two-level range table geometry")
    print(f"{'bench':<8}{'entries':>8}{'bits':>6}{'storage':>9}{'hit rate':>10}")
    for (name, entries, bits), metrics in rows.items():
        storage = entries * 128 * bits // 8
        print(
            f"{name:<8}{entries:>8}{bits:>6}{storage:>8}B"
            f"{metrics.prediction_rate:>10.3f}"
        )

    for name in BENCHMARKS:
        rates = [rows[(name, e, 4)].prediction_rate for e in ENTRIES]
        # Capacity has mild, near-saturated effect around the paper's
        # 64-entry point.  (A bigger table can even lose a little: it
        # retains stale buckets on pages with mixed update behaviour
        # instead of falling back to the root window after eviction.)
        assert all(b >= a - 0.03 for a, b in zip(rates, rates[1:]))
        assert rows[(name, 64, 4)].prediction_rate >= max(rates) - 0.03
        # 2-bit ranges saturate at distance 4*(depth+1)-1 = 23 and lose to
        # 4-bit ranges on update-band-heavy workloads.
        assert rows[(name, 64, 2)].prediction_rate <= rows[(name, 64, 4)].prediction_rate + 1e-9
