"""Ablation — prediction depth (Section 7.1).

The paper profiles misprediction and finds that simply increasing the
prediction depth "does not solve the problem as too many predictions will
overload the crypto-engine".  This sweep reproduces both halves: hit rate
saturates with depth while speculative engine load grows linearly.
"""

from repro.crypto.rng import HardwareRng
from repro.cpu.system import replay_miss_trace
from repro.experiments.config import TABLE1_256K
from repro.experiments.runner import apply_preseed, get_miss_trace
from repro.secure.controller import SecureMemoryController
from repro.secure.predictors import RegularOtpPredictor
from repro.secure.seqnum import PageSecurityTable

BENCHMARKS = ("swim", "twolf")
DEPTHS = (1, 3, 5, 8, 12, 16)
REFS = 20_000


def run_depth_sweep():
    rows = {}
    for benchmark in BENCHMARKS:
        miss_trace, preseed = get_miss_trace(benchmark, TABLE1_256K, references=REFS)
        for depth in DEPTHS:
            table = PageSecurityTable(rng=HardwareRng(1))
            controller = SecureMemoryController(
                page_table=table,
                predictor=RegularOtpPredictor(table, depth=depth),
            )
            apply_preseed(controller, preseed)
            metrics = replay_miss_trace(
                miss_trace, controller, core=TABLE1_256K.core, scheme=f"depth{depth}"
            )
            rows[(benchmark, depth)] = metrics
    return rows


def test_ablation_depth(benchmark):
    rows = benchmark.pedantic(run_depth_sweep, rounds=1, iterations=1)
    print()
    print("Ablation: prediction depth (regular adaptive prediction)")
    print(f"{'bench':<8}{'depth':>6}{'hit rate':>10}{'spec blocks':>13}{'IPC':>9}")
    for (name, depth), metrics in rows.items():
        print(
            f"{name:<8}{depth:>6}{metrics.prediction_rate:>10.3f}"
            f"{metrics.engine_speculative_blocks:>13}{metrics.ipc:>9.4f}"
        )

    for name in BENCHMARKS:
        rates = [rows[(name, d)].prediction_rate for d in DEPTHS]
        # Hit rate is non-decreasing in depth...
        assert all(b >= a - 1e-9 for a, b in zip(rates, rates[1:]))
        # ...but with diminishing returns: the last step adds less than the
        # first one.
        assert rates[1] - rates[0] >= rates[-1] - rates[-2] - 1e-9
        # Engine load keeps growing linearly regardless.
        loads = [rows[(name, d)].engine_speculative_blocks for d in DEPTHS]
        assert loads[-1] > loads[0] * 3
