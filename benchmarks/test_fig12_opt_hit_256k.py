"""Figure 12 — hit rates: two-level vs context vs regular, 256KB L2.

Paper: two-level lifts the average from ~82% to ~96%; context-based
approaches 99% and wins on most benchmarks.
"""

from repro.experiments.report import series_average


def test_figure12(record_figure):
    from repro.experiments.figures import figure12

    def check(result):
        regular = series_average(result.series["Regular"])
        two_level = series_average(result.series["Two_Level"])
        context = series_average(result.series["Context"])
        assert context > two_level > regular
        assert context > 0.9
        # Both optimizations dominate regular on every benchmark.
        for benchmark in result.benchmarks():
            assert result.series["Two_Level"][benchmark] >= result.series["Regular"][benchmark]
            assert result.series["Context"][benchmark] >= result.series["Regular"][benchmark]

    record_figure(figure12, check)
