"""Figure 14 — absolute number of predictions, 256KB vs 1MB L2.

Paper: a larger L2 reduces memory traffic, so far fewer predictions are
made with 1MB than with 256KB.
"""

from repro.experiments.report import series_average


def test_figure14(record_figure):
    from repro.experiments.figures import figure14

    def check(result):
        small = series_average(result.series["L2_256K"])
        large = series_average(result.series["L2_1M"])
        assert small > large
        for benchmark in result.benchmarks():
            assert (
                result.series["L2_256K"][benchmark]
                >= result.series["L2_1M"][benchmark]
            ), benchmark

    record_figure(figure14, check)
