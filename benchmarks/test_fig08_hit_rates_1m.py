"""Figure 8 — sequence-number hit rates, 1MB L2, long window.

Paper: prediction still wins with a fairly large L2 (~80% vs 57% for a
128KB cache); sequence numbers have large working sets.
"""

from repro.experiments.report import series_average


def test_figure8(record_figure):
    from repro.experiments.figures import figure8

    def check(result):
        pred = series_average(result.series["Pred"])
        cache_128 = series_average(result.series["128K_cache"])
        assert pred > cache_128
        assert pred > 0.6

    record_figure(figure8, check)
