"""Figure 11 — normalized IPC: caches vs prediction, 1MB L2.

Paper: same ordering at 1MB, with a smaller average gain (+11%) because a
larger L2 filters more misses.
"""

from repro.experiments.report import series_average


def test_figure11(record_figure):
    from repro.experiments.figures import figure11

    def check(result):
        pred = series_average(result.series["Pred"])
        cache_128 = series_average(result.series["Seq_Cache_128K"])
        assert pred > cache_128
        for series in result.series.values():
            assert all(v <= 1.0 + 1e-9 for v in series.values())

    record_figure(figure11, check)
