"""Shared infrastructure for the figure-reproduction benchmarks.

Each ``benchmarks/test_*`` module regenerates one table or figure of the
paper.  Runs print the same rows/series the paper plots, store the rendered
text under ``benchmarks/results/``, and attach the headline averages to the
pytest-benchmark record (``--benchmark-only`` shows them in extra_info).

Trace length: ``REPRO_REFS`` environment variable (default 60000 references
per workload; see EXPERIMENTS.md for the scaling argument).
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def record_figure(benchmark):
    """Run a figure function once, render it, persist it, annotate it."""

    def run(figure_fn, shape_checks=None):
        from repro.experiments.report import render_figure, series_average

        result = benchmark.pedantic(figure_fn, rounds=1, iterations=1)
        text = render_figure(result)
        print()
        print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        filename = result.figure_id.lower().replace(" ", "") + ".txt"
        (RESULTS_DIR / filename).write_text(text + "\n")
        for name, values in result.series.items():
            benchmark.extra_info[f"avg_{name}"] = round(series_average(values), 4)
        if shape_checks:
            shape_checks(result)
        return result

    return run
