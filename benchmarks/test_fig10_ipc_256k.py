"""Figure 10 — normalized IPC: caches (4K/128K/512K) vs prediction, 256KB L2.

Paper: prediction outperforms a 128KB cache for every benchmark and even a
512KB cache on average; average IPC +18% over no-help.
"""

from repro.experiments.report import series_average


def test_figure10(record_figure):
    from repro.experiments.figures import figure10

    def check(result):
        pred = series_average(result.series["Pred"])
        cache_4 = series_average(result.series["Seq_Cache_4K"])
        cache_128 = series_average(result.series["Seq_Cache_128K"])
        cache_512 = series_average(result.series["Seq_Cache_512K"])
        assert pred > cache_512 >= cache_128 >= cache_4 * 0.99
        # Prediction beats the 128KB cache for every benchmark (paper claim).
        for benchmark in result.benchmarks():
            assert (
                result.series["Pred"][benchmark]
                > result.series["Seq_Cache_128K"][benchmark]
            ), benchmark
        # Everything is normalized to the oracle.
        for series in result.series.values():
            assert all(v <= 1.0 + 1e-9 for v in series.values())

    record_figure(figure10, check)
